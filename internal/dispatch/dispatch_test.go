package dispatch

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecom"
)

// scoreOf is the stub's deterministic verdict: a stable hash of the
// item ID mapped into [0, 1). Tests recover the expected score for any
// ID without threading state around.
func scoreOf(id string) float64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return float64(h.Sum32()%1000) / 1000
}

// stubScorer is a controllable Scorer: per-ID scoring counts, an
// optional entry handshake (started/release) to hold a batch open, an
// optional fixed delay, and an injectable error.
type stubScorer struct {
	mu      sync.Mutex
	calls   int
	scored  map[string]int
	started chan struct{} // closed on first call, if non-nil
	release chan struct{} // first call blocks on this, if non-nil
	once    sync.Once
	delay   time.Duration
	err     error
}

func (s *stubScorer) DetectWithFeatures(ctx context.Context, items []ecom.Item, workers int) ([]core.Detection, [][]float64, error) {
	s.mu.Lock()
	s.calls++
	if s.scored == nil {
		s.scored = map[string]int{}
	}
	for i := range items {
		s.scored[items[i].ID]++
	}
	err := s.err
	s.mu.Unlock()
	if s.started != nil {
		blocked := false
		s.once.Do(func() {
			close(s.started)
			blocked = true
		})
		if blocked && s.release != nil {
			<-s.release
		}
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if err != nil {
		return nil, nil, err
	}
	dets := make([]core.Detection, len(items))
	X := make([][]float64, len(items))
	for i := range items {
		sc := scoreOf(items[i].ID)
		dets[i] = core.Detection{ItemID: items[i].ID, Score: sc, IsFraud: sc >= 0.5}
		X[i] = []float64{sc}
	}
	return dets, X, nil
}

func (s *stubScorer) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *stubScorer) timesScored(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scored[id]
}

func item(id string) ecom.Item { return ecom.Item{ID: id, SalesVolume: 10} }

func items(ids ...string) []ecom.Item {
	out := make([]ecom.Item, len(ids))
	for i, id := range ids {
		out[i] = item(id)
	}
	return out
}

// checkResult asserts a Submit result carries the stub's verdict for
// every requested ID, in request order, with its feature row.
func checkResult(t *testing.T, res Result, ids ...string) {
	t.Helper()
	if len(res.Detections) != len(ids) {
		t.Fatalf("got %d detections, want %d", len(res.Detections), len(ids))
	}
	for i, id := range ids {
		if res.Detections[i].ItemID != id {
			t.Errorf("detection %d is %q, want %q", i, res.Detections[i].ItemID, id)
		}
		if want := scoreOf(id); res.Detections[i].Score != want {
			t.Errorf("score[%s] = %v, want %v", id, res.Detections[i].Score, want)
		}
		if len(res.Features[i]) != 1 || res.Features[i][0] != scoreOf(id) {
			t.Errorf("feature row %d = %v, want [%v]", i, res.Features[i], scoreOf(id))
		}
	}
}

func TestFlushOnMaxBatch(t *testing.T) {
	stub := &stubScorer{}
	// MaxWait is an hour: only the size trigger can flush. The test
	// completing at all proves the size flush fires.
	d := New(stub, Options{MaxBatch: 4, MaxWait: time.Hour, MaxQueue: 100})
	defer d.Close()
	var wg sync.WaitGroup
	var res1, res2 Result
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		res1, err1 = d.Submit(context.Background(), items("a", "b", "c"))
	}()
	// Give the first request time to enqueue so the second completes
	// the batch (ordering is not required for correctness, only for the
	// single-batch assertion below).
	for d.QueueDepth() < 3 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		defer wg.Done()
		res2, err2 = d.Submit(context.Background(), items("d"))
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	checkResult(t, res1, "a", "b", "c")
	checkResult(t, res2, "d")
	if got := stub.callCount(); got != 1 {
		t.Errorf("scorer calls = %d, want 1 fused batch", got)
	}
}

func TestFlushOnMaxWait(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{MaxBatch: 100, MaxWait: 10 * time.Millisecond})
	defer d.Close()
	start := time.Now()
	res, err := d.Submit(context.Background(), items("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "a", "b")
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("flushed after %v, before the 10ms max wait", elapsed)
	}
	if got := stub.callCount(); got != 1 {
		t.Errorf("scorer calls = %d, want 1", got)
	}
}

func TestCoalesceIdenticalInFlight(t *testing.T) {
	stub := &stubScorer{started: make(chan struct{}), release: make(chan struct{})}
	d := New(stub, Options{MaxBatch: 100, MaxWait: time.Millisecond})
	defer d.Close()

	const waiters = 10
	coalescedBefore := d.m.coalesced.Value()
	var wg sync.WaitGroup
	results := make([]Result, waiters+1)
	errs := make([]error, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = d.Submit(context.Background(), items("hot"))
	}()
	<-stub.started // the batch holding "hot" is now inside the scorer
	for w := 1; w <= waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = d.Submit(context.Background(), items("hot"))
		}(w)
	}
	// Every late submitter must attach to the scoring flight, not queue
	// a duplicate; the coalesce counter records each attach.
	for d.m.coalesced.Value()-coalescedBefore < waiters {
		time.Sleep(time.Millisecond)
	}
	if depth := d.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth = %d, want 0 (everything coalesced)", depth)
	}
	close(stub.release)
	wg.Wait()
	for w := 0; w <= waiters; w++ {
		if errs[w] != nil {
			t.Fatalf("waiter %d: %v", w, errs[w])
		}
		checkResult(t, results[w], "hot")
	}
	if got := stub.timesScored("hot"); got != 1 {
		t.Errorf("item scored %d times for %d waiters, want 1", got, waiters+1)
	}
}

func TestDuplicateIDsWithinRequest(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{MaxBatch: 100, MaxWait: time.Millisecond})
	defer d.Close()
	res, err := d.Submit(context.Background(), items("x", "y", "x"))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "x", "y", "x")
	if got := stub.timesScored("x"); got != 1 {
		t.Errorf("duplicate-in-request item scored %d times, want 1", got)
	}
}

func TestShedQueueFull(t *testing.T) {
	stub := &stubScorer{}
	// No flush can fire: batch threshold and wait are both out of
	// reach, so the queue stays exactly as filled.
	d := New(stub, Options{MaxBatch: 100, MaxWait: time.Hour, MaxQueue: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedRes Result
	var queuedErr error
	go func() {
		defer wg.Done()
		queuedRes, queuedErr = d.Submit(context.Background(), items("a", "b"))
	}()
	for d.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}

	// A new item does not fit.
	if _, err := d.Submit(context.Background(), items("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Mixed requests shed atomically: nothing is enqueued, even though
	// "a" would have coalesced.
	if _, err := d.Submit(context.Background(), items("a", "c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("mixed err = %v, want ErrQueueFull", err)
	}
	if depth := d.QueueDepth(); depth != 2 {
		t.Fatalf("queue depth after sheds = %d, want 2 (shed must not enqueue)", depth)
	}
	// A pure-coalesce request occupies no new slot and is admitted.
	coalescedBefore := d.m.coalesced.Value()
	wg.Add(1)
	var dupRes Result
	var dupErr error
	go func() {
		defer wg.Done()
		dupRes, dupErr = d.Submit(context.Background(), items("a"))
	}()
	for d.m.coalesced.Value() == coalescedBefore {
		time.Sleep(time.Millisecond)
	}
	if got := d.InFlight(); got != 2 { // still just a and b
		t.Fatalf("inflight = %d after coalesced admit, want 2", got)
	}

	// Close flushes the held queue, releasing every admitted waiter.
	d.Close()
	wg.Wait()
	if queuedErr != nil || dupErr != nil {
		t.Fatalf("admitted waiters errored: %v, %v", queuedErr, dupErr)
	}
	checkResult(t, queuedRes, "a", "b")
	checkResult(t, dupRes, "a")
	if !IsShed(ErrQueueFull) {
		t.Error("IsShed(ErrQueueFull) = false")
	}
}

func TestShedHopelessDeadline(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{MaxBatch: 100, MaxWait: 250 * time.Millisecond})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.Submit(ctx, items("a"))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("shed took %v; must reject immediately, not wait out the deadline", elapsed)
	}
	if got := stub.callCount(); got != 0 {
		t.Errorf("scorer called %d times for a shed request", got)
	}
	if !IsShed(err) {
		t.Error("IsShed(ErrDeadline) = false")
	}
}

func TestGenerousDeadlineAdmitted(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{MaxBatch: 100, MaxWait: 5 * time.Millisecond})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := d.Submit(ctx, items("a"))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "a")
}

func TestBypassLargeRequest(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{MaxBatch: 4, MaxWait: time.Hour})
	defer d.Close()
	// At MaxBatch the request is its own batch: scored synchronously,
	// no queue involvement, despite the unreachable wait timer.
	res, err := d.Submit(context.Background(), items("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "a", "b", "c", "d")
	if got := stub.callCount(); got != 1 {
		t.Errorf("scorer calls = %d, want 1", got)
	}
	if depth := d.QueueDepth(); depth != 0 {
		t.Errorf("queue depth = %d after bypass, want 0", depth)
	}
}

func TestBatchErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	stub := &stubScorer{err: boom}
	d := New(stub, Options{MaxBatch: 100, MaxWait: time.Millisecond})
	defer d.Close()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = d.Submit(context.Background(), items(fmt.Sprintf("e%d", w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("waiter %d err = %v, want boom", w, err)
		}
	}
	if d.InFlight() != 0 {
		t.Errorf("inflight = %d after errored batch, want 0", d.InFlight())
	}
}

func TestWaiterCancellationReleasesOnlyTheWaiter(t *testing.T) {
	stub := &stubScorer{started: make(chan struct{}), release: make(chan struct{})}
	d := New(stub, Options{MaxBatch: 100, MaxWait: time.Millisecond})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() {
		_, err := d.Submit(ctx, items("a"))
		canceled <- err
	}()
	<-stub.started
	// A second waiter coalesces onto the in-flight item.
	coalescedBefore := d.m.coalesced.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	var res Result
	var err2 error
	go func() {
		defer wg.Done()
		res, err2 = d.Submit(context.Background(), items("a"))
	}()
	for d.m.coalesced.Value() == coalescedBefore {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-canceled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return while its batch was blocked")
	}
	// The flight itself survives the canceled waiter and still serves
	// the other one.
	close(stub.release)
	wg.Wait()
	if err2 != nil {
		t.Fatal(err2)
	}
	checkResult(t, res, "a")
	if got := stub.timesScored("a"); got != 1 {
		t.Errorf("item scored %d times, want 1", got)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	d := New(&stubScorer{}, Options{})
	d.Close()
	if _, err := d.Submit(context.Background(), items("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if !IsShed(ErrClosed) {
		t.Error("IsShed(ErrClosed) = false")
	}
	d.Close() // idempotent
}

func TestEmptySubmit(t *testing.T) {
	stub := &stubScorer{}
	d := New(stub, Options{})
	defer d.Close()
	res, err := d.Submit(context.Background(), nil)
	if err != nil || len(res.Detections) != 0 {
		t.Fatalf("empty submit: res=%+v err=%v", res, err)
	}
	if stub.callCount() != 0 {
		t.Error("scorer called for an empty submit")
	}
}
