package mlp

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "mlp", func() ml.Classifier {
		return New(Config{Hidden: 8, Epochs: 40, LearningRate: 0.1, Seed: 1})
	})
}

func TestLearnsXOR(t *testing.T) {
	// One hidden layer of tanh units solves XOR — the classic
	// demonstration that the network is genuinely non-linear.
	ds := mltest.XOR(600, 1)
	clf := New(Config{Hidden: 8, Epochs: 300, LearningRate: 0.3, Seed: 2})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(clf, ds); acc < 0.95 {
		t.Fatalf("XOR accuracy %.3f, want >= 0.95", acc)
	}
}

func TestUnfittedProba(t *testing.T) {
	clf := New(Config{})
	if p := clf.PredictProba([]float64{1, 2}); p != 0.5 {
		t.Fatalf("unfitted PredictProba = %v, want 0.5", p)
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	ds := mltest.Gaussians(300, 3, 2, 3)
	free := New(Config{Hidden: 6, Epochs: 30, Seed: 4})
	reg := New(Config{Hidden: 6, Epochs: 30, Seed: 4, L2: 0.5})
	if err := free.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := reg.Fit(ds); err != nil {
		t.Fatal(err)
	}
	norm := func(c *Classifier) float64 {
		var s float64
		for _, row := range c.w1 {
			for _, v := range row {
				s += v * v
			}
		}
		for _, v := range c.w2 {
			s += v * v
		}
		return s
	}
	if norm(reg) >= norm(free) {
		t.Fatalf("L2-regularized weights (%v) not smaller than free (%v)", norm(reg), norm(free))
	}
}

func TestBatchBoundary(t *testing.T) {
	// Dataset size not divisible by batch size must still train.
	ds := mltest.Gaussians(101, 2, 3, 5)
	clf := New(Config{Hidden: 4, Epochs: 20, BatchSize: 32, Seed: 6})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(clf, ds); acc < 0.9 {
		t.Fatalf("accuracy %.3f with ragged final batch", acc)
	}
}
