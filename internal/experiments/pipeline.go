package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"

	"repro/internal/collector"
	"repro/internal/crawler"
	"repro/internal/platform"
)

// EPlatformResult is the end-to-end Section IV experiment: crawl the
// second platform's public pages, run the D0-pretrained detector, and
// audit a sample of the reported fraud items against ground truth
// (standing in for the paper's expert panel).
type EPlatformResult struct {
	ItemsCollected    int
	CommentsCollected int
	CrawlStats        crawler.Stats
	Reported          int // fraud items reported by CATS (paper: 10,720)
	AuditSample       int // sampled reports audited (paper: 1,000)
	AuditConfirmed    int // confirmed fraudulent (paper: 960)
	AuditPrecision    float64
	// Recall against the universe's hidden ground truth — unavailable
	// to the paper (no labels on E-platform) but measurable here.
	TrueRecall float64
}

// EPlatform runs the full pipeline: simulated site → crawler →
// detector → audit, at the high-confidence reporting threshold
// (EPlatThreshold).
func (l *Lab) EPlatform(ctx context.Context) (*EPlatformResult, error) {
	det, err := l.EPlatSystem()
	if err != nil {
		return nil, err
	}
	ep := l.EPlat()
	srv := platform.New(ep, platform.Options{PageSize: 50})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	col := collector.New(ts.URL, crawler.Config{Workers: 8})
	crawlRes, err := col.Collect(ctx, "E-platform")
	if err != nil {
		return nil, fmt.Errorf("eplatform: crawl: %w", err)
	}
	res := &EPlatformResult{
		ItemsCollected: len(crawlRes.Dataset.Items),
		CrawlStats:     crawlRes.CrawlStats,
	}
	for i := range crawlRes.Dataset.Items {
		res.CommentsCollected += len(crawlRes.Dataset.Items[i].Comments)
	}

	dets, err := det.Detect(crawlRes.Dataset.Items, l.cfg.Workers)
	if err != nil {
		return nil, err
	}
	truth := map[string]bool{}
	totalFraud := 0
	for i := range ep.Dataset.Items {
		isFraud := ep.Dataset.Items[i].Label.IsFraud()
		truth[ep.Dataset.Items[i].ID] = isFraud
		if isFraud {
			totalFraud++
		}
	}
	var reported []string
	for i, d := range dets {
		if d.IsFraud {
			reported = append(reported, crawlRes.Dataset.Items[i].ID)
		}
	}
	res.Reported = len(reported)

	// Audit: sample up to 1,000 reported items and check ground truth,
	// the role the paper's anti-fraud experts played.
	rng := rand.New(rand.NewSource(31 + l.cfg.Seed))
	rng.Shuffle(len(reported), func(i, j int) { reported[i], reported[j] = reported[j], reported[i] })
	sample := reported
	if len(sample) > 1000 {
		sample = sample[:1000]
	}
	res.AuditSample = len(sample)
	for _, id := range sample {
		if truth[id] {
			res.AuditConfirmed++
		}
	}
	if res.AuditSample > 0 {
		res.AuditPrecision = float64(res.AuditConfirmed) / float64(res.AuditSample)
	}
	hits := 0
	for _, id := range reported {
		if truth[id] {
			hits++
		}
	}
	if totalFraud > 0 {
		res.TrueRecall = float64(hits) / float64(totalFraud)
	}
	return res, nil
}

// String prints the Section IV reproduction.
func (r *EPlatformResult) String() string {
	var b strings.Builder
	b.WriteString("E-platform end-to-end (crawl → detect → audit)\n")
	fmt.Fprintf(&b, "  crawled %d items / %d comments (%d fetches, %d retries, %d dup-suppressed)\n",
		r.ItemsCollected, r.CommentsCollected, r.CrawlStats.Fetched, r.CrawlStats.Retries, r.CrawlStats.Duplicates)
	fmt.Fprintf(&b, "  reported fraud items: %d (paper: 10,720 at full scale)\n", r.Reported)
	fmt.Fprintf(&b, "  audited %d, confirmed %d → precision %.2f (paper: 1000/960 → 0.96)\n",
		r.AuditSample, r.AuditConfirmed, r.AuditPrecision)
	fmt.Fprintf(&b, "  recall vs hidden ground truth: %.2f\n", r.TrueRecall)
	return b.String()
}
