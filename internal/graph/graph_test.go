package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"repro/internal/ecom"
	"repro/internal/synth"
)

// randomBuilder draws a random bipartite evidence graph and the edge
// list it was built from. Users and items are interned up front in a
// fixed order so tests can permute edge insertion independently.
func randomBuilder(rng *rand.Rand, nUsers, nItems int, fraudShare float64) (*Builder, [][2]int, []bool) {
	b := NewBuilder(Config{})
	fraud := make([]bool, nItems)
	for u := 0; u < nUsers; u++ {
		b.User("u"+strconv.Itoa(u), int64(100+rng.Intn(5000)))
	}
	for it := 0; it < nItems; it++ {
		id := b.Item("i" + strconv.Itoa(it))
		if rng.Float64() < fraudShare {
			b.MarkFraud(id)
			fraud[it] = true
		}
	}
	var edges [][2]int
	for it := 0; it < nItems; it++ {
		deg := rng.Intn(13)
		for k := 0; k < deg; k++ {
			edges = append(edges, [2]int{rng.Intn(nUsers), it})
		}
		// Occasionally duplicate an edge: dedupe must absorb it.
		if deg > 0 && rng.Intn(3) == 0 {
			edges = append(edges, edges[len(edges)-1])
		}
	}
	for _, e := range edges {
		b.AddEdge(UserID(e[0]), ItemID(e[1]))
	}
	return b, edges, fraud
}

// oraclePairs recomputes pair counts with a naive map-of-sets: per
// fraud item a distinct-buyer set, then every pair of each set counted
// into a map. The CSR miner must agree exactly.
func oraclePairs(edges [][2]int, fraud []bool, cfg Config) map[uint64]int32 {
	cfg = cfg.withDefaults()
	byItem := map[int]map[int]bool{}
	for _, e := range edges {
		if !fraud[e[1]] {
			continue
		}
		if byItem[e[1]] == nil {
			byItem[e[1]] = map[int]bool{}
		}
		byItem[e[1]][e[0]] = true
	}
	counts := map[uint64]int32{}
	for _, buyers := range byItem {
		if len(buyers) < 2 || len(buyers) > cfg.MaxItemDegree {
			continue
		}
		var ids []int
		for u := range buyers {
			ids = append(ids, u)
		}
		sort.Ints(ids)
		for i := range ids {
			for j := 0; j < i; j++ {
				counts[pairKey(UserID(ids[j]), UserID(ids[i]))]++
			}
		}
	}
	return counts
}

func TestPairMiningDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b, edges, fraud := randomBuilder(rng, 50+rng.Intn(200), 20+rng.Intn(60), 0.4)
		g := b.Build()
		tab, _, _ := g.minePairs()
		want := oraclePairs(edges, fraud, g.cfg)
		got := map[uint64]int32{}
		for i, k := range tab.keys {
			if k != 0 {
				got[k] = tab.counts[i]
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d mined pairs, oracle has %d", seed, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				lo, hi := pairUsers(k)
				t.Fatalf("seed %d: pair (%d,%d) count %d, oracle %d", seed, lo, hi, got[k], c)
			}
		}
	}
}

func TestPairMiningDegreeCap(t *testing.T) {
	b := NewBuilder(Config{MaxItemDegree: 8})
	for u := 0; u < 20; u++ {
		b.User("u"+strconv.Itoa(u), 100)
	}
	mega := b.Item("mega")
	b.MarkFraud(mega)
	small := b.Item("small")
	b.MarkFraud(small)
	for u := 0; u < 20; u++ {
		b.AddEdge(UserID(u), mega)
	}
	for u := 0; u < 3; u++ {
		b.AddEdge(UserID(u), small)
	}
	g := b.Build()
	tab, mined, skipped := g.minePairs()
	if mined != 1 || skipped != 1 {
		t.Fatalf("mined %d skipped %d, want 1/1", mined, skipped)
	}
	if tab.n != 3 {
		t.Fatalf("capped mining left %d pairs, want 3", tab.n)
	}
}

// clusterReportBytes builds, clusters, and encodes one run over the
// given dataset.
func clusterReportBytes(ds *ecom.Dataset) []byte {
	g := FromDataset(ds, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	return EncodeReport(g.Cluster().Report)
}

func TestReportDeterminism(t *testing.T) {
	u := synth.RingAttack(synth.RingConfig{Seed: 7})
	first := clusterReportBytes(&u.Dataset)
	for run := 0; run < 3; run++ {
		again := clusterReportBytes(&synth.RingAttack(synth.RingConfig{Seed: 7}).Dataset)
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d: report bytes differ from first run", run)
		}
	}
}

func TestReportEdgeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b, edges, _ := randomBuilder(rng, 120, 50, 0.5)
	base := EncodeReport(b.Build().Cluster().Report)
	for trial := 0; trial < 5; trial++ {
		// Rebuild with identical intern order but shuffled edges.
		b2 := NewBuilder(Config{})
		rng2 := rand.New(rand.NewSource(99))
		randomBuilderInto(b2, rng2, 120, 50, 0.5)
		shuffled := make([][2]int, len(edges))
		copy(shuffled, edges)
		shufRng := rand.New(rand.NewSource(int64(trial)))
		shufRng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, e := range shuffled {
			b2.AddEdge(UserID(e[0]), ItemID(e[1]))
		}
		got := EncodeReport(b2.Build().Cluster().Report)
		if !bytes.Equal(base, got) {
			t.Fatalf("trial %d: permuted edge order changed report bytes", trial)
		}
	}
}

// randomBuilderInto replays randomBuilder's intern and fraud-marking
// draws (same rng sequence) without adding edges.
func randomBuilderInto(b *Builder, rng *rand.Rand, nUsers, nItems int, fraudShare float64) {
	for u := 0; u < nUsers; u++ {
		b.User("u"+strconv.Itoa(u), int64(100+rng.Intn(5000)))
	}
	for it := 0; it < nItems; it++ {
		id := b.Item("i" + strconv.Itoa(it))
		if rng.Float64() < fraudShare {
			b.MarkFraud(id)
		}
	}
}

func TestRingRecovery(t *testing.T) {
	u := synth.RingAttack(synth.RingConfig{Seed: 11})
	g := FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	rep := g.Cluster().Report
	if len(rep.Clusters) != len(u.Rings) {
		t.Fatalf("%d clusters for %d planted rings", len(rep.Clusters), len(u.Rings))
	}
	matched := make([]bool, len(u.Rings))
	for ci := range rep.Clusters {
		c := &rep.Clusters[ci]
		ring := u.UserRing[c.Users[0]]
		if matched[ring] {
			t.Fatalf("ring %d matched by two clusters (split)", ring)
		}
		if len(c.Users) != len(u.Rings[ring]) {
			t.Fatalf("cluster %d has %d users, ring %d has %d", ci, len(c.Users), ring, len(u.Rings[ring]))
		}
		for _, uid := range c.Users {
			if r, ok := u.UserRing[uid]; !ok || r != ring {
				t.Fatalf("cluster %d mixes ring %d with user %s (merge)", ci, ring, uid)
			}
		}
		matched[ring] = true
		// Every ring item is fraud-scored and shared by the whole ring.
		if c.SharedFraudItems != u.Config.ItemsPerRing {
			t.Errorf("cluster %d shares %d fraud items, want %d", ci, c.SharedFraudItems, u.Config.ItemsPerRing)
		}
		if c.FraudFraction != 1 {
			t.Errorf("cluster %d fraud fraction %v, want 1", ci, c.FraudFraction)
		}
		if c.Risk <= 0 || c.Risk >= 1 {
			t.Errorf("cluster %d risk %v out of (0,1)", ci, c.Risk)
		}
	}
	for r, ok := range matched {
		if !ok {
			t.Errorf("ring %d never recovered", r)
		}
	}
}

func TestFunnelMatchesEcomStats(t *testing.T) {
	u := synth.RingAttack(synth.RingConfig{Seed: 3})
	stats := u.Dataset.Stats()
	g := FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	rep := g.Cluster().Report
	if rep.RiskyUsers != stats.RiskyUsers {
		t.Errorf("graph risky users %d, ecom.Stats %d", rep.RiskyUsers, stats.RiskyUsers)
	}
	if rep.RepeatBuyers != stats.RepeatFraudBuyers {
		t.Errorf("graph repeat buyers %d, ecom.Stats %d", rep.RepeatBuyers, stats.RepeatFraudBuyers)
	}
	// The same parity must hold on Generate's probabilistic universes.
	gu := synth.Generate(synth.Config{
		Name: "parity", Seed: 17, FraudEvidence: 40, Normal: 80, Shops: 6,
	})
	gstats := gu.Dataset.Stats()
	gg := FromDataset(&gu.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	grep := gg.Cluster().Report
	if grep.RiskyUsers != gstats.RiskyUsers || grep.RepeatBuyers != gstats.RepeatFraudBuyers {
		t.Errorf("generate universe: graph funnel (%d,%d) != ecom.Stats (%d,%d)",
			grep.RiskyUsers, grep.RepeatBuyers, gstats.RiskyUsers, gstats.RepeatFraudBuyers)
	}
}

func TestReportCodecRoundTrip(t *testing.T) {
	u := synth.RingAttack(synth.RingConfig{Seed: 5, Rings: 4})
	g := FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	rep := g.Cluster().Report
	enc := EncodeReport(rep)
	dec, err := DecodeReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, dec) {
		t.Fatal("decoded report differs from original")
	}
	if !bytes.Equal(enc, EncodeReport(dec)) {
		t.Fatal("re-encoding the decoded report changed bytes")
	}
	// Hostile inputs must fail cleanly.
	if _, err := DecodeReport(nil); err == nil {
		t.Error("nil input decoded")
	}
	if _, err := DecodeReport([]byte("CATX\x01")); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := DecodeReport([]byte{'C', 'A', 'T', 'G', 99}); err == nil {
		t.Error("unknown version decoded")
	}
	for cut := 5; cut < len(enc); cut += 7 {
		if _, err := DecodeReport(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestScorerEvidence(t *testing.T) {
	u := synth.RingAttack(synth.RingConfig{Seed: 13, Rings: 3})
	g := FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, Config{})
	res := g.Cluster()
	sc := res.Scorer(ScorerConfig{})
	// Every ring item carries evidence from its own ring's cluster.
	for itemID, ring := range u.ItemRing {
		ev, ok := sc.ItemEvidence(itemID)
		if !ok {
			t.Fatalf("fraud item %s (ring %d) has no evidence", itemID, ring)
		}
		if ev.Size != u.Config.RingSize {
			t.Errorf("item %s evidence size %d, want %d", itemID, ev.Size, u.Config.RingSize)
		}
		if ev.Boost <= 0 || ev.Boost > 0.25 {
			t.Errorf("item %s boost %v out of (0,0.25]", itemID, ev.Boost)
		}
		cl := &res.Report.Clusters[ev.Cluster]
		if r := u.UserRing[cl.Users[0]]; r != ring {
			t.Errorf("item %s attached to ring %d's cluster, want %d", itemID, r, ring)
		}
	}
	// Normal items carry none.
	for i := range u.Dataset.Items {
		it := &u.Dataset.Items[i]
		if !it.Label.IsFraud() {
			if _, ok := sc.ItemEvidence(it.ID); ok {
				t.Errorf("normal item %s has cluster evidence", it.ID)
			}
		}
	}
	// A high size gate filters everything out.
	strict := res.Scorer(ScorerConfig{MinClusterSize: u.Config.RingSize + 1})
	if strict.Items() != 0 {
		t.Errorf("strict scorer still boosts %d items", strict.Items())
	}
}
