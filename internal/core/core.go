package core
