// Package colfmt implements the CATS columnar binary container: the
// on-disk format shared by model snapshots and datasets when row-wise
// JSON costs too much at corpus scale (the paper scores 72.3M comments
// and crawls 100M+ — parsing every string through encoding/json at that
// volume dominates the pipeline it feeds).
//
// A file is a fixed header followed by length-prefixed, CRC-guarded
// blocks:
//
//	header:  magic "CATC" | version u8 | kind u8
//	block:   name-len uvarint | name | payload-len uvarint | crc32 u32le | payload
//
// Block payloads hold columns, not rows. String columns store uint32
// offsets into a shared per-block-group string arena, so a decoded
// string is a zero-copy slice of the arena — one allocation per arena,
// none per value. Integer columns are varint-packed (zigzag for signed
// values); float columns are fixed 8-byte little-endian IEEE bits so
// values round-trip exactly. Readers skip blocks with unknown names,
// which is how the format grows without a version bump.
//
// Decode failures are diagnosable from the error alone: every *Error
// carries the format version, the block name, and the byte offset the
// decoder died at (mirroring internal/core's JSON decodeFailureDetail).
//
// Arena lifetime: strings decoded from a block alias its arena and keep
// the whole arena reachable. That is the contract that lets arena-backed
// comment text flow into the //cats:hotpath tokenizer without copies;
// callers that retain a few strings from a huge block should
// strings.Clone them instead of pinning the arena.
package colfmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FormatVersion is bumped on incompatible layout changes.
const FormatVersion = 1

// Container kinds, stamped in the header so a model snapshot is never
// mistaken for a dataset (or vice versa).
const (
	KindSnapshot byte = 1
	KindDataset  byte = 2
)

// magic identifies a CATS columnar file. Chosen to be invalid as the
// first bytes of both JSON ('{') and JSONL, so format sniffing is a
// 4-byte peek.
var magic = [4]byte{'C', 'A', 'T', 'C'}

const headerSize = 6 // magic + version + kind

// maxBlockName bounds block-name length; names are short identifiers.
const maxBlockName = 255

// Sniff reports whether prefix begins with the columnar magic. A peek
// of at least 4 bytes decides between this format and JSON.
func Sniff(prefix []byte) bool {
	return len(prefix) >= 4 && [4]byte(prefix[:4]) == magic
}

// Error is a diagnosable container failure: format version, block name
// (empty while still reading the header), and the absolute byte offset
// the failure was detected at.
type Error struct {
	Version int
	Block   string
	Offset  int64
	Msg     string
	Err     error // wrapped cause, may be nil
}

// Error renders the full diagnostic, the detail a failed tenant reload
// surfaces in its /admin/reload response body.
func (e *Error) Error() string {
	where := "header"
	if e.Block != "" {
		where = fmt.Sprintf("block %q", e.Block)
	}
	s := fmt.Sprintf("colfmt: %s: format version %d, byte offset %d: %s", where, e.Version, e.Offset, e.Msg)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Writer emits a columnar container.
type Writer struct {
	w     io.Writer
	off   int64
	err   error
	var64 [binary.MaxVarintLen64]byte
}

// NewWriter writes the container header for the given kind and returns
// a block writer. The caller provides buffering (the dataset and
// snapshot writers both sit on a bufio.Writer).
func NewWriter(w io.Writer, kind byte) (*Writer, error) {
	cw := &Writer{w: w}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	hdr[4] = FormatVersion
	hdr[5] = kind
	if err := cw.writeAll(hdr[:]); err != nil {
		return nil, err
	}
	return cw, nil
}

// WriteBlock frames one named block: name, payload length, CRC32 of
// the payload, payload.
func (w *Writer) WriteBlock(name string, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(name) == 0 || len(name) > maxBlockName {
		w.err = fmt.Errorf("colfmt: block name %q length %d (want 1..%d)", name, len(name), maxBlockName)
		return w.err
	}
	w.writeUvarint(uint64(len(name)))
	w.writeAll([]byte(name))
	w.writeUvarint(uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	w.writeAll(crc[:])
	w.writeAll(payload)
	return w.err
}

// Offset returns the bytes written so far.
func (w *Writer) Offset() int64 { return w.off }

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

func (w *Writer) writeAll(b []byte) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	if err != nil {
		w.err = fmt.Errorf("colfmt: write: %w", err)
	}
	return w.err
}

func (w *Writer) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.var64[:], v)
	w.writeAll(w.var64[:n])
}

// Reader walks a columnar container block by block.
type Reader struct {
	r       *bufio.Reader
	version int
	kind    byte
	off     int64
	buf     []byte // payload scratch, reused across Next calls
}

// NewReader validates the header and positions the reader at the first
// block. r is wrapped in a bufio.Reader unless it already is one.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	cr := &Reader{r: br, version: FormatVersion}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, cr.fail("short header", err)
	}
	cr.off = headerSize
	if !Sniff(hdr[:]) {
		return nil, cr.fail(fmt.Sprintf("bad magic %q", hdr[:4]), nil)
	}
	cr.version = int(hdr[4])
	if cr.version != FormatVersion {
		return nil, cr.fail(fmt.Sprintf("unsupported format version %d (want %d)", cr.version, FormatVersion), nil)
	}
	cr.kind = hdr[5]
	if cr.kind != KindSnapshot && cr.kind != KindDataset {
		return nil, cr.fail(fmt.Sprintf("unknown container kind %d", cr.kind), nil)
	}
	return cr, nil
}

// Kind returns the container kind from the header.
func (r *Reader) Kind() byte { return r.kind }

// Offset returns the absolute byte offset consumed so far.
func (r *Reader) Offset() int64 { return r.off }

// Next returns the next block. The payload is valid only until the
// following Next call (the buffer is reused); decoded numeric columns
// are copied out and string columns alias the arena, so block decoders
// built on Dec never retain it. Returns io.EOF cleanly at end of
// container.
func (r *Reader) Next() (name string, payload []byte, err error) {
	if _, err := r.r.Peek(1); err == io.EOF {
		return "", nil, io.EOF
	}
	nameLen, err := r.readUvarint("block name length")
	if err != nil {
		return "", nil, err
	}
	if nameLen == 0 || nameLen > maxBlockName {
		return "", nil, r.fail(fmt.Sprintf("block name length %d (want 1..%d)", nameLen, maxBlockName), nil)
	}
	nameBuf := make([]byte, nameLen)
	if err := r.readFull(nameBuf, "block name"); err != nil {
		return "", nil, err
	}
	name = string(nameBuf)
	payLen, err := r.readUvarint("payload length of " + name)
	if err != nil {
		return "", nil, err
	}
	if payLen > 1<<31 {
		return "", nil, r.failBlock(name, fmt.Sprintf("payload length %d exceeds 2GiB cap", payLen), nil)
	}
	var crcBuf [4]byte
	if err := r.readFull(crcBuf[:], "crc of "+name); err != nil {
		return "", nil, err
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if uint64(cap(r.buf)) < payLen {
		r.buf = make([]byte, payLen)
	}
	payload = r.buf[:payLen]
	if err := r.readFull(payload, "payload of "+name); err != nil {
		return "", nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return "", nil, r.failBlock(name, fmt.Sprintf("crc mismatch: stored %08x, computed %08x", want, got), nil)
	}
	return name, payload, nil
}

// Dec returns a column decoder over payload that reports failures with
// this reader's version and the block's name.
func (r *Reader) Dec(block string, payload []byte) *Dec {
	return &Dec{version: r.version, block: block, b: payload}
}

func (r *Reader) readUvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(countingByteReader{r})
	if err != nil {
		return 0, r.fail("reading "+what, noEOF(err))
	}
	return v, nil
}

func (r *Reader) readFull(dst []byte, what string) error {
	n, err := io.ReadFull(r.r, dst)
	r.off += int64(n)
	if err != nil {
		return r.fail("reading "+what, noEOF(err))
	}
	return nil
}

func (r *Reader) fail(msg string, cause error) *Error {
	return &Error{Version: r.version, Offset: r.off, Msg: msg, Err: cause}
}

func (r *Reader) failBlock(block, msg string, cause error) *Error {
	return &Error{Version: r.version, Block: block, Offset: r.off, Msg: msg, Err: cause}
}

// noEOF converts a bare EOF inside a frame into ErrUnexpectedEOF: only
// a block boundary may end the container cleanly.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// countingByteReader feeds ReadUvarint while keeping Reader.off honest.
type countingByteReader struct{ r *Reader }

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.r.ReadByte()
	if err == nil {
		c.r.off++
	}
	return b, err
}
