package dataset

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReader checks that arbitrary byte streams never panic the JSONL
// reader: every line either decodes to an item or yields an error, and
// iteration always terminates.
func FuzzReader(f *testing.F) {
	f.Add(`{"item_id":"a"}`)
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"item_id":"a","comments":[{"comment_id":"c"}]}` + "\n{bad")
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, s string) {
		r := NewReader(strings.NewReader(s))
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // decode errors are fine; panics are not
			}
		}
		t.Fatal("reader did not terminate")
	})
}
