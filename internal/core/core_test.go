package core

import (
	"errors"
	"testing"

	"repro/internal/ecom"
	"repro/internal/synth"
	"repro/internal/textgen"
)

// trainedDetector builds an oracle-analyzer detector trained on a small
// synthetic D0-shaped set.
func trainedDetector(t *testing.T, cfg DetectorConfig) (*Detector, *synth.Universe) {
	t.Helper()
	bank := textgen.NewBank()
	texts, labels := synth.PolarCorpus(1200, 21)
	a, err := OracleAnalyzer(bank, texts, labels)
	if err != nil {
		t.Fatal(err)
	}
	train := synth.Generate(synth.Config{
		Name: "train", Seed: 22, FraudEvidence: 150, FraudManual: 30, Normal: 220, Shops: 10,
	})
	d, err := NewDetector(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(&train.Dataset, 0); err != nil {
		t.Fatal(err)
	}
	return d, train
}

func TestDetectorEndToEnd(t *testing.T) {
	d, _ := trainedDetector(t, DetectorConfig{})
	test := synth.Generate(synth.Config{
		Name: "test", Seed: 33, FraudEvidence: 60, Normal: 120, Shops: 8,
	})
	dets, err := d.Detect(test.Dataset.Items, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, fn, tn int
	for i, det := range dets {
		truth := test.Dataset.Items[i].Label.IsFraud()
		switch {
		case det.IsFraud && truth:
			tp++
		case det.IsFraud && !truth:
			fp++
		case !det.IsFraud && truth:
			fn++
		default:
			tn++
		}
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	if prec < 0.85 {
		t.Errorf("precision %.3f, want >= 0.85", prec)
	}
	if rec < 0.85 {
		t.Errorf("recall %.3f, want >= 0.85", rec)
	}
}

func TestDetectBeforeTrain(t *testing.T) {
	bank := textgen.NewBank()
	texts, labels := synth.PolarCorpus(200, 24)
	a, err := OracleAnalyzer(bank, texts, labels)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(a, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(nil, 0); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("Detect err = %v, want ErrNotTrained", err)
	}
	if _, err := d.DetectItem(&ecom.Item{}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("DetectItem err = %v, want ErrNotTrained", err)
	}
}

func TestRuleFilterSalesVolume(t *testing.T) {
	d, _ := trainedDetector(t, DetectorConfig{MinSalesVolume: 5})
	item := &ecom.Item{
		ID: "low", SalesVolume: 2,
		Comments: []ecom.Comment{{Content: "很好满意推荐"}},
	}
	if d.PassesFilter(item) {
		t.Error("item with sales volume 2 passed the filter")
	}
	det, err := d.DetectItem(item)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Filtered || det.IsFraud {
		t.Errorf("detection = %+v, want filtered non-fraud", det)
	}
}

func TestRuleFilterPositiveSignal(t *testing.T) {
	d, _ := trainedDetector(t, DetectorConfig{})
	neutral := &ecom.Item{
		ID: "neutral", SalesVolume: 50,
		Comments: []ecom.Comment{{Content: "质量一般，物流太差。"}},
	}
	if d.PassesFilter(neutral) {
		t.Error("item with no positive words passed the filter")
	}
	positive := &ecom.Item{
		ID: "pos", SalesVolume: 50,
		Comments: []ecom.Comment{{Content: "很好"}},
	}
	if !d.PassesFilter(positive) {
		t.Error("item with positive word blocked by filter")
	}
}

func TestRuleFilterDisabled(t *testing.T) {
	d, _ := trainedDetector(t, DetectorConfig{DisableRuleFilter: true})
	item := &ecom.Item{ID: "low", SalesVolume: 0}
	if !d.PassesFilter(item) {
		t.Error("disabled filter still filtering")
	}
}

func TestNewClassifierKinds(t *testing.T) {
	for _, k := range Kinds {
		clf, err := NewClassifier(k)
		if err != nil {
			t.Errorf("NewClassifier(%s): %v", k, err)
		}
		if clf == nil {
			t.Errorf("NewClassifier(%s) = nil", k)
		}
	}
	if _, err := NewClassifier("bogus"); err == nil {
		t.Error("unknown kind should error")
	}
	if clf, err := NewClassifier(""); err != nil || clf == nil {
		t.Error("empty kind should default to GBT")
	}
}

func TestTrainAnalyzerEndToEnd(t *testing.T) {
	bank := textgen.NewBank()
	corpus := synth.TrainingCorpus(3000, 25)
	texts, labels := synth.PolarCorpus(800, 26)
	a, err := TrainAnalyzer(corpus, texts, labels, bank.Vocabulary(), AnalyzerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Positive.Len() == 0 || a.Negative.Len() == 0 {
		t.Fatalf("lexicons empty: pos=%d neg=%d", a.Positive.Len(), a.Negative.Len())
	}
	// The expanded positive set must mostly consist of ground-truth
	// positive words.
	var hits int
	for _, w := range a.Positive.Words() {
		if bank.IsPositive(w) {
			hits++
		}
	}
	purity := float64(hits) / float64(a.Positive.Len())
	if purity < 0.7 {
		t.Errorf("positive lexicon purity %.2f (%d/%d)", purity, hits, a.Positive.Len())
	}
	// No word may sit in both lexicons after disambiguation.
	for _, w := range a.Positive.Words() {
		if a.Negative.Contains(w) {
			t.Errorf("word %q in both lexicons", w)
		}
	}
}

func TestTrainAnalyzerEmptyCorpus(t *testing.T) {
	bank := textgen.NewBank()
	texts, labels := synth.PolarCorpus(100, 27)
	if _, err := TrainAnalyzer(nil, texts, labels, bank.Vocabulary(), AnalyzerConfig{}); err == nil {
		t.Fatal("empty corpus should error")
	}
}

func TestDetectParallelConsistency(t *testing.T) {
	d, train := trainedDetector(t, DetectorConfig{})
	seq, err := d.Detect(train.Dataset.Items[:50], 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.Detect(train.Dataset.Items[:50], 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("detection %d differs between 1 and 8 workers", i)
		}
	}
}

func TestBuildMLDatasetLabels(t *testing.T) {
	d, train := trainedDetector(t, DetectorConfig{})
	mlds := d.BuildMLDataset(train.Dataset.Items, 0)
	if mlds.Len() != len(train.Dataset.Items) {
		t.Fatal("row count mismatch")
	}
	for i := range train.Dataset.Items {
		want := 0
		if train.Dataset.Items[i].Label.IsFraud() {
			want = 1
		}
		if mlds.Y[i] != want {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	if len(mlds.FeatureNames) != 11 {
		t.Fatalf("feature names = %d, want 11", len(mlds.FeatureNames))
	}
}
