package cats

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/textgen"
)

func TestSystemSaveLoadRoundTrip(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()

	var buf bytes.Buffer
	if err := sys.Save(&buf, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	test := synth.Generate(synth.Config{
		Name: "roundtrip", Seed: 81, FraudEvidence: 20, Normal: 60, Shops: 4,
	})
	before, err := sys.Detect(test.Dataset.Items)
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.Detect(test.Dataset.Items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("detection %d differs after save/load: %+v vs %+v", i, before[i], after[i])
		}
	}

	// Feature importance survives too (Fig 7 from a shipped model).
	imp, err := restored.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 11 {
		t.Fatalf("importance entries = %d", len(imp))
	}
}

func TestSystemSaveLoadFile(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := sys.SaveFile(path, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	test := synth.Generate(synth.Config{
		Name: "file", Seed: 82, FraudEvidence: 5, Normal: 15, Shops: 2,
	})
	if _, err := restored.Detect(test.Dataset.Items); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadResaveByteStable pins snapshot byte-determinism: saving,
// loading, and saving again must reproduce the original bytes exactly.
// Anything less means the segmenter dictionary, lexicons, or tree
// ensemble is serialized in an unstable (e.g. map-iteration) order,
// which would break content-addressed model storage and make model
// diffs meaningless.
func TestSaveLoadResaveByteStable(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()

	var first bytes.Buffer
	if err := sys.Save(&first, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := restored.Save(&second, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot not byte-stable across save→load→save: %d vs %d bytes", first.Len(), second.Len())
	}

	// And saving the same system twice is stable too.
	var again bytes.Buffer
	if err := sys.Save(&again, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two saves of the same system differ")
	}
}

// TestLoadTruncated feeds Load every prefix of a valid snapshot at a
// few cut points: all must error, none may panic or return a
// half-restored system.
func TestLoadTruncated(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()
	var buf bytes.Buffer
	if err := sys.Save(&buf, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 0.999} {
		n := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("loading %d/%d bytes should error", n, len(full))
		}
	}
}

// TestLoadWrongVersion rejects snapshots from an incompatible format
// version with a useful error rather than misreading them.
func TestLoadWrongVersion(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()
	var buf bytes.Buffer
	if err := sys.Save(&buf, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	snap["version"] = 999
	mangled, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(mangled)); err == nil {
		t.Fatal("future-version snapshot should be rejected")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("error should mention the version mismatch, got: %v", err)
	}
}

// TestLoadValidJSONWrongShape: parseable JSON that is not a snapshot
// (or is an empty one) must error, not yield a detector that panics on
// first use.
func TestLoadValidJSONWrongShape(t *testing.T) {
	for _, body := range []string{`{}`, `[]`, `{"version":1}`, `"hello"`, `null`} {
		if _, err := Load(bytes.NewBufferString(body)); err == nil {
			t.Errorf("Load(%q) should error", body)
		}
	}
}

// TestSaveFileUnwritable surfaces filesystem errors from SaveFile
// instead of swallowing them.
func TestSaveFileUnwritable(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()
	path := filepath.Join(t.TempDir(), "missing-dir", "model.json")
	if err := sys.SaveFile(path, bank.Vocabulary()); err == nil {
		t.Fatal("SaveFile into a missing directory should error")
	}
}

// TestSaveFileCorruptRoundTripFile corrupts the on-disk snapshot and
// checks LoadFile reports it.
func TestSaveFileCorruptRoundTripFile(t *testing.T) {
	sys := trainSystem(t)
	bank := textgen.NewBank()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := sys.SaveFile(path, bank.Vocabulary()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated snapshot file should fail to load")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("corrupt input should error")
	}
}
