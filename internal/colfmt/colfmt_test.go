package colfmt

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock("meta", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !Sniff(buf.Bytes()) {
		t.Fatal("written container does not sniff as columnar")
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindSnapshot {
		t.Fatalf("kind = %d, want %d", r.Kind(), KindSnapshot)
	}
	name, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if name != "meta" || string(payload) != "hello" {
		t.Fatalf("block = %q %q", name, payload)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at container end, got %v", err)
	}
}

func TestSniff(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"CATC", true},
		{"CATCxx", true},
		{"CAT", false},
		{"", false},
		{`{"version":1}`, false},
		{"catc", false},
	} {
		if got := Sniff([]byte(tc.in)); got != tc.want {
			t.Errorf("Sniff(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	var arena Arena
	var e Enc
	strs := []string{"", "a", "hello", strings.Repeat("x", 300), ""}
	ints := []int64{0, -1, 1, math.MaxInt64, math.MinInt64}
	floats := []float64{0, -0.0, 1.5, math.Inf(1), math.SmallestNonzeroFloat64, math.Pi}
	bts := []byte{0, 1, 255}

	e.Uvarint(42)
	e.Varint(-7)
	e.Str("scalar")
	e.Bool(true)
	e.Byte(9)
	e.F64(2.5)
	e.StringCol(&arena, strs)
	e.IntCol(ints)
	e.IntsCol([]int{3, -4})
	e.F64Col(floats)
	e.ByteCol(bts)

	d := NewDec("t", e.Bytes())
	as := string(arena.Bytes())
	if got := d.Uvarint(); got != 42 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -7 {
		t.Fatalf("Varint = %d", got)
	}
	if got := d.Str(); got != "scalar" {
		t.Fatalf("Str = %q", got)
	}
	if !d.Bool() {
		t.Fatal("Bool = false")
	}
	if got := d.Byte(); got != 9 {
		t.Fatalf("Byte = %d", got)
	}
	if got := d.F64(); got != 2.5 {
		t.Fatalf("F64 = %v", got)
	}
	gotStrs := d.StringCol(as)
	if len(gotStrs) != len(strs) {
		t.Fatalf("StringCol len = %d", len(gotStrs))
	}
	for i := range strs {
		if gotStrs[i] != strs[i] {
			t.Fatalf("string %d = %q, want %q", i, gotStrs[i], strs[i])
		}
	}
	gotInts := d.IntCol()
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Fatalf("int %d = %d, want %d", i, gotInts[i], ints[i])
		}
	}
	if gi := d.IntsCol(); gi[0] != 3 || gi[1] != -4 {
		t.Fatalf("IntsCol = %v", gi)
	}
	gotF := d.F64Col()
	for i := range floats {
		if math.Float64bits(gotF[i]) != math.Float64bits(floats[i]) {
			t.Fatalf("float %d bits differ: %v vs %v", i, gotF[i], floats[i])
		}
	}
	if gb := d.ByteCol(); !bytes.Equal(gb, bts) {
		t.Fatalf("ByteCol = %v", gb)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestStringColZeroCopy(t *testing.T) {
	var arena Arena
	var e Enc
	e.StringCol(&arena, []string{"alpha", "beta"})
	as := string(arena.Bytes())
	d := NewDec("t", e.Bytes())
	got := d.StringCol(as)
	// Zero-copy contract: the decoded strings are slices of the arena
	// string, not fresh allocations.
	if got[0] != as[0:5] || got[1] != as[5:9] {
		t.Fatalf("decoded strings %q do not match arena slices of %q", got, as)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindDataset)
	if err := w.WriteBlock("data", []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0x40 // flip a payload bit

	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.Next()
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("want *Error, got %v", err)
	}
	if ce.Block != "data" || !strings.Contains(ce.Msg, "crc mismatch") {
		t.Fatalf("error = %v", ce)
	}
	if ce.Version != FormatVersion || ce.Offset == 0 {
		t.Fatalf("error missing diagnostics: %+v", ce)
	}
}

func TestTruncatedContainer(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindDataset)
	w.WriteBlock("data", bytes.Repeat([]byte("z"), 100))
	full := buf.Bytes()

	// Every strict prefix must fail with a diagnosable error (or a
	// clean EOF exactly at the block boundary), never a panic.
	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			if cut >= headerSize {
				t.Fatalf("header rejected at cut %d: %v", cut, err)
			}
			continue
		}
		_, _, err = r.Next()
		if err == nil {
			t.Fatalf("cut %d: truncated block decoded successfully", cut)
		}
		if err == io.EOF && cut != headerSize {
			t.Fatalf("cut %d: clean EOF inside a frame", cut)
		}
	}
}

func TestBadMagicAndVersionAndKind(t *testing.T) {
	if _, err := NewReader(strings.NewReader(`{"json":1}`)); err == nil {
		t.Fatal("JSON accepted as columnar")
	}
	bad := []byte{'C', 'A', 'T', 'C', 99, KindSnapshot}
	if _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	bad = []byte{'C', 'A', 'T', 'C', FormatVersion, 77}
	if _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

func TestDecStickyErrors(t *testing.T) {
	d := NewDec("blk", []byte{0x01}) // one byte: not enough for a u32
	_ = d.U32()
	if d.Err() == nil {
		t.Fatal("truncated u32 not detected")
	}
	// Subsequent reads return zero values without panicking and the
	// first error is retained.
	first := d.Err().Error()
	_ = d.F64()
	_ = d.StringCol("")
	if d.Err().Error() != first {
		t.Fatal("sticky error was replaced")
	}
	var ce *Error
	if !errors.As(d.Err(), &ce) || ce.Block != "blk" {
		t.Fatalf("error lacks block context: %v", d.Err())
	}
}

func TestDecCountGuard(t *testing.T) {
	// A column claiming 2^40 floats inside a 10-byte payload must fail
	// before allocating.
	var e Enc
	e.Uvarint(1 << 40)
	d := NewDec("t", append(e.Bytes(), 1, 2, 3))
	if got := d.F64Col(); got != nil || d.Err() == nil {
		t.Fatalf("oversized count decoded: %v, err %v", got, d.Err())
	}
}

func TestStringColBounds(t *testing.T) {
	// End offsets beyond the arena, or moving backwards, are corruption.
	var e Enc
	e.Uvarint(1) // one string
	e.U32(0)     // base
	e.U32(100)   // end beyond arena
	d := NewDec("t", e.Bytes())
	if got := d.StringCol("short"); got != nil || d.Err() == nil {
		t.Fatalf("out-of-bounds string decoded: %v", got)
	}

	var e2 Enc
	e2.Uvarint(2)
	e2.U32(3) // base
	e2.U32(5)
	e2.U32(2) // backwards
	d = NewDec("t", e2.Bytes())
	if got := d.StringCol("abcdefgh"); got != nil || d.Err() == nil {
		t.Fatalf("backwards string offsets decoded: %v", got)
	}
}

func TestDoneRejectsTrailingBytes(t *testing.T) {
	var e Enc
	e.Uvarint(7)
	payload := append(e.Bytes(), 0xAA)
	d := NewDec("t", payload)
	if got := d.Uvarint(); got != 7 {
		t.Fatalf("Uvarint = %d", got)
	}
	if err := d.Done(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestUnknownBlocksSkippable(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindSnapshot)
	w.WriteBlock("future-block", []byte("from a newer writer"))
	w.WriteBlock("meta", []byte("m"))
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for {
		name, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if len(names) != 2 || names[0] != "future-block" || names[1] != "meta" {
		t.Fatalf("blocks = %v", names)
	}
}

func TestWriterRejectsBadBlockNames(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindSnapshot)
	if err := w.WriteBlock("", nil); err == nil {
		t.Fatal("empty block name accepted")
	}
	w2, _ := NewWriter(&buf, KindSnapshot)
	if err := w2.WriteBlock(strings.Repeat("n", 300), nil); err == nil {
		t.Fatal("overlong block name accepted")
	}
}
