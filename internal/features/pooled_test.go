package features

import (
	"testing"

	"repro/internal/synth"
)

// TestVectorSignalMatchesAnalyzeItem: the pooled no-retention path must
// produce the same vector (bit-for-bit) and the same stage-one decision
// as the retaining AnalyzeItem path on every item.
func TestVectorSignalMatchesAnalyzeItem(t *testing.T) {
	e := synthExtractor(t)
	u := synth.Generate(synth.Config{
		Name: "pooled", Seed: 44, FraudEvidence: 50, Normal: 50, Shops: 5,
	})
	items := u.Dataset.Items
	items = append(items,
		*item(),
		*item(""),
		*item("！！！，，，"),
		*item("很好很好很好"),
		*item("很好，满意！", "", "质量太差。"),
	)
	for i := range items {
		a := e.AnalyzeItem(&items[i])
		wantV, wantSig := a.Vector(), a.HasPositiveSignal()
		gotV, gotSig := e.VectorSignal(&items[i])
		if gotSig != wantSig {
			t.Fatalf("item %d: VectorSignal signal %v, AnalyzeItem %v", i, gotSig, wantSig)
		}
		for j := range wantV {
			if gotV[j] != wantV[j] {
				t.Fatalf("item %d feature %s: VectorSignal %v != AnalyzeItem %v",
					i, Names[j], gotV[j], wantV[j])
			}
		}
	}
}

// TestVectorSignalSegmentsOncePerComment: pooling must not change the
// exactly-once segmentation accounting.
func TestVectorSignalSegmentsOncePerComment(t *testing.T) {
	e := synthExtractor(t)
	it := item("很好，满意！", "质量太差。", "好评好评", "")
	before := e.seg.Segmentations()
	_, _ = e.VectorSignal(it)
	if got, want := e.seg.Segmentations()-before, int64(len(it.Comments)); got != want {
		t.Fatalf("VectorSignal ran %d segmentation passes for %d comments", got, want)
	}
}

// TestVectorSignalAllocations: once the scratch pool is warm, the fused
// path's only allocation is the returned 11-float vector (one alloc).
// The bound is loose enough to tolerate a pool miss under parallel test
// runs but tight enough to catch a reintroduced per-comment allocation.
func TestVectorSignalAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	e := synthExtractor(t)
	it := item("很好，满意！五星好评。", "质量不错物流很快", "好评好评好评")
	_, _ = e.VectorSignal(it) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = e.VectorSignal(it)
	})
	if allocs > 2 {
		t.Fatalf("VectorSignal allocated %.1f times per item, want <= 2", allocs)
	}
}

// TestHasPositiveSignalAllocations: the filter-only fast path reuses
// pooled word buffers and must stay allocation-free when warm.
func TestHasPositiveSignalAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	e := synthExtractor(t)
	it := item("质量一般。", "物流太差", "很好很好")
	_ = e.HasPositiveSignal(it) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		_ = e.HasPositiveSignal(it)
	})
	if allocs > 0 {
		t.Fatalf("HasPositiveSignal allocated %.1f times per item, want 0", allocs)
	}
}
