package features

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ecom"
	"repro/internal/lexicon"
	"repro/internal/sentiment"
	"repro/internal/synth"
	"repro/internal/textgen"
	"repro/internal/tokenize"
)

// toyExtractor builds an extractor with a tiny hand-built vocabulary so
// feature values can be verified by hand.
func toyExtractor(t *testing.T) *Extractor {
	t.Helper()
	vocab := []string{"很好", "满意", "太差", "质量", "物流", "不错"}
	seg := tokenize.NewSegmenter(vocab)
	pos := lexicon.NewSet([]string{"很好", "满意", "不错"})
	neg := lexicon.NewSet([]string{"太差"})
	sent, err := sentiment.Train(
		[][]string{{"很好", "满意"}, {"不错"}, {"太差"}, {"太差", "太差"}},
		[]int{1, 1, 0, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	return NewExtractor(seg, pos, neg, sent)
}

func item(comments ...string) *ecom.Item {
	it := &ecom.Item{ID: "i", SalesVolume: 10}
	for i, c := range comments {
		it.Comments = append(it.Comments, ecom.Comment{ID: string(rune('a' + i)), Content: c})
	}
	return it
}

func TestVectorLengthAndNames(t *testing.T) {
	if len(Names) != NumFeatures {
		t.Fatalf("len(Names) = %d, want %d", len(Names), NumFeatures)
	}
	e := toyExtractor(t)
	v := e.Vector(item("很好"))
	if len(v) != NumFeatures {
		t.Fatalf("len(Vector) = %d, want %d", len(v), NumFeatures)
	}
}

func TestZeroVectorForNoComments(t *testing.T) {
	e := toyExtractor(t)
	v := e.Vector(item())
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %s = %v on empty item, want 0", Names[i], x)
		}
	}
}

func TestWordLevelFeatures(t *testing.T) {
	e := toyExtractor(t)
	// Comment 1: 很好满意太差 → pos 2, neg 1; comment 2: 质量 → pos 0, neg 0.
	v := e.Vector(item("很好满意太差", "质量"))
	if got := v[AveragePositiveNumber]; got != 1.0 {
		t.Errorf("averagePositiveNumber = %v, want 1.0 ((2+0)/2)", got)
	}
	// ‖2−1‖ + ‖0−0‖ over 2 comments = 0.5.
	if got := v[AveragePosNegNumber]; got != 0.5 {
		t.Errorf("averagePositive/NegativeNumber = %v, want 0.5", got)
	}
}

func TestNgramFeatures(t *testing.T) {
	e := toyExtractor(t)
	// 很好满意 → words [很好 满意], one 2-gram, both positive → 1 positive gram.
	v := e.Vector(item("很好满意"))
	if got := v[AverageNgramNumber]; got != 1 {
		t.Errorf("averageNgramNumber = %v, want 1", got)
	}
	// ratio = grams / (len(words)-1) = 1/1.
	if got := v[AverageNgramRatio]; got != 1 {
		t.Errorf("averageNgramRatio = %v, want 1", got)
	}
	// 质量物流 → no positive words → no positive 2-grams.
	v2 := e.Vector(item("质量物流"))
	if got := v2[AverageNgramNumber]; got != 0 {
		t.Errorf("averageNgramNumber = %v, want 0", got)
	}
}

func TestNgramMixedPair(t *testing.T) {
	e := toyExtractor(t)
	// 质量很好 → (质量, 很好): one word positive → counts as positive gram.
	v := e.Vector(item("质量很好"))
	if got := v[AverageNgramNumber]; got != 1 {
		t.Errorf("averageNgramNumber = %v, want 1 for mixed pair", got)
	}
}

func TestStructuralFeatures(t *testing.T) {
	e := toyExtractor(t)
	v := e.Vector(item("很好，满意！", "质量"))
	// Lengths: 6 runes and 2 runes.
	if got := v[AverageCommentLength]; got != 4 {
		t.Errorf("averageCommentLength = %v, want 4", got)
	}
	if got := v[SumCommentLength]; got != 8 {
		t.Errorf("sumCommentLength = %v, want 8", got)
	}
	if got := v[SumPunctuationNumber]; got != 2 {
		t.Errorf("sumPunctuationNumber = %v, want 2", got)
	}
	// Punct ratios: 2/6 and 0/2 → avg 1/6.
	if got := v[AveragePunctuationRatio]; math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("averagePunctuationRatio = %v, want 1/6", got)
	}
}

func TestUniqueWordRatio(t *testing.T) {
	e := toyExtractor(t)
	// 很好很好很好 → 3 words, 1 unique → 1/3.
	v := e.Vector(item("很好很好很好"))
	if got := v[UniqueWordRatio]; math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("uniqueWordRatio = %v, want 1/3", got)
	}
	// All distinct → 1.
	v2 := e.Vector(item("很好满意质量"))
	if got := v2[UniqueWordRatio]; got != 1 {
		t.Errorf("uniqueWordRatio = %v, want 1", got)
	}
}

func TestEntropyFeature(t *testing.T) {
	e := toyExtractor(t)
	// Repeated single word → entropy 0.
	v := e.Vector(item("很好很好"))
	if got := v[AverageCommentEntropy]; got != 0 {
		t.Errorf("entropy of repeated word = %v, want 0", got)
	}
	// Two distinct words → entropy 1 bit.
	v2 := e.Vector(item("很好满意"))
	if got := v2[AverageCommentEntropy]; math.Abs(got-1) > 1e-12 {
		t.Errorf("entropy = %v, want 1", got)
	}
}

func TestSentimentFeatureOrdering(t *testing.T) {
	e := toyExtractor(t)
	pos := e.Vector(item("很好满意"))[AverageSentiment]
	neg := e.Vector(item("太差太差"))[AverageSentiment]
	if pos <= neg {
		t.Fatalf("positive sentiment %v <= negative %v", pos, neg)
	}
}

func TestHasPositiveSignal(t *testing.T) {
	e := toyExtractor(t)
	if !e.HasPositiveSignal(item("质量很好")) {
		t.Error("positive word not detected")
	}
	if e.HasPositiveSignal(item("质量太差")) {
		t.Error("false positive signal")
	}
	if e.HasPositiveSignal(item()) {
		t.Error("empty item should have no signal")
	}
}

func TestExtractDatasetParallelMatchesSerial(t *testing.T) {
	u := synth.Generate(synth.Config{
		Name: "t", Seed: 5, FraudEvidence: 30, Normal: 30, Shops: 3,
	})
	bank := textgen.NewBank()
	seg := tokenize.NewSegmenter(bank.Vocabulary())
	sent, err := sentiment.Train(
		[][]string{{"很好"}, {"太差"}},
		[]int{1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor(seg, lexicon.NewSet(bank.Positive), lexicon.NewSet(bank.Negative), sent)
	par := e.ExtractDataset(u.Dataset.Items, 8)
	ser := e.ExtractDataset(u.Dataset.Items, 1)
	if len(par) != len(ser) {
		t.Fatal("length mismatch")
	}
	for i := range par {
		for j := range par[i] {
			if par[i][j] != ser[i][j] {
				t.Fatalf("row %d feature %d differs: %v vs %v", i, j, par[i][j], ser[i][j])
			}
		}
	}
}

func TestCommentStructure(t *testing.T) {
	e := toyExtractor(t)
	cs := e.CommentStructure("很好，很好！")
	if cs.PunctCount != 2 {
		t.Errorf("PunctCount = %d, want 2", cs.PunctCount)
	}
	if cs.RuneLength != 6 {
		t.Errorf("RuneLength = %d, want 6", cs.RuneLength)
	}
	if cs.UniqueWordRatio != 0.5 {
		t.Errorf("UniqueWordRatio = %v, want 0.5", cs.UniqueWordRatio)
	}
	if cs.Entropy != 0 {
		t.Errorf("Entropy = %v, want 0", cs.Entropy)
	}
	empty := e.CommentStructure("")
	if empty.Sentiment != 0.5 || empty.UniqueWordRatio != 0 {
		t.Errorf("empty comment structure = %+v", empty)
	}
}

// TestFraudNormalSeparation verifies the core premise: on generated
// data, fraud items' features differ from normal ones in the directions
// the paper reports.
func TestFraudNormalSeparation(t *testing.T) {
	u := synth.Generate(synth.Config{
		Name: "sep", Seed: 11, FraudEvidence: 120, Normal: 120, Shops: 5,
	})
	bank := u.Bank
	seg := tokenize.NewSegmenter(bank.Vocabulary())
	texts, labels := synth.PolarCorpus(1500, 12)
	docs := make([][]string, len(texts))
	for i, txt := range texts {
		docs[i] = seg.Words(txt)
	}
	sent, err := sentiment.Train(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor(seg, lexicon.NewSet(bank.Positive), lexicon.NewSet(bank.Negative), sent)

	means := func(items []*ecom.Item) []float64 {
		out := make([]float64, NumFeatures)
		for _, it := range items {
			v := e.Vector(it)
			for j := range v {
				out[j] += v[j]
			}
		}
		for j := range out {
			out[j] /= float64(len(items))
		}
		return out
	}
	fraud, normal := u.Dataset.Split()
	fm, nm := means(fraud), means(normal)

	gt := func(idx int, name string) {
		if fm[idx] <= nm[idx] {
			t.Errorf("%s: fraud mean %v <= normal %v", name, fm[idx], nm[idx])
		}
	}
	lt := func(idx int, name string) {
		if fm[idx] >= nm[idx] {
			t.Errorf("%s: fraud mean %v >= normal %v", name, fm[idx], nm[idx])
		}
	}
	gt(AveragePositiveNumber, "averagePositiveNumber")
	gt(AveragePosNegNumber, "averagePos/NegNumber")
	gt(AverageSentiment, "averageSentiment")
	gt(AverageCommentLength, "averageCommentLength")
	gt(SumPunctuationNumber, "sumPunctuationNumber")
	gt(AverageNgramNumber, "averageNgramNumber")
	gt(AverageCommentEntropy, "averageCommentEntropy")
	lt(UniqueWordRatio, "uniqueWordRatio")
	_ = rand.Int
}
