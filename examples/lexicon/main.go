// Lexicon demonstrates the semantic analyzer in isolation: train a
// word2vec model on a comment corpus, then grow the positive and
// negative lexicons from a handful of seed words by iterative k-NN
// search — the Table I construction, including the discovery of
// filter-evading homographs like 好坪/好平 for 好评.
//
//	go run ./examples/lexicon
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/synth"
	"repro/internal/textgen"
	"repro/internal/tokenize"
	"repro/internal/word2vec"
)

func main() {
	bank := textgen.NewBank()
	seg := tokenize.NewSegmenter(bank.Vocabulary())

	// 1. Segment a comment corpus (70M comments in the paper; a
	// generated stand-in here).
	corpus := synth.TrainingCorpus(20000, 21)
	sentences := make([][]string, len(corpus))
	for i, c := range corpus {
		sentences[i] = seg.Words(c)
	}
	fmt.Printf("corpus: %d comments\n", len(corpus))

	// 2. Train skip-gram embeddings.
	model, err := word2vec.Train(sentences, word2vec.Config{
		Dim: 32, Window: 4, Negative: 5, Epochs: 3, MinCount: 3, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word2vec: %d-word vocabulary, 32 dimensions\n\n", model.VocabSize())

	// 3. Inspect neighborhoods: the embedding places co-promoted words
	// together.
	for _, w := range []string{"好评", "差评"} {
		fmt.Printf("nearest to %s:", w)
		for _, nb := range model.Nearest(w, 6) {
			fmt.Printf("  %s(%.2f)", nb.Word, nb.Sim)
		}
		fmt.Println()
	}
	fmt.Println()

	// 4. Expand seeds into the Table I lexicons.
	cfg := lexicon.Config{K: 12, MaxSize: 200, MinSim: 0.4}
	pos, err := lexicon.Expand(model, core.DefaultPositiveSeeds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	neg, err := lexicon.Expand(model, core.DefaultNegativeSeeds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, words []string, isTruth func(string) bool) {
		hits := 0
		for _, w := range words {
			if isTruth(w) {
				hits++
			}
		}
		fmt.Printf("%s set: %d words, %.0f%% in the generator's ground-truth lexicon\n",
			name, len(words), 100*float64(hits)/float64(len(words)))
		fmt.Printf("  sample: %v\n", words[:min(12, len(words))])
	}
	report("positive", pos, bank.IsPositive)
	report("negative", neg, bank.IsNegative)

	// 5. Homograph discovery — the paper highlights that word2vec
	// finds 好坪/好平, misspellings fraud campaigns use to dodge
	// keyword filters.
	fmt.Println("\nhomograph variants discovered in the positive set:")
	variants := map[string]bool{}
	for _, vars := range bank.Homographs {
		for _, v := range vars {
			variants[v] = true
		}
	}
	for _, w := range pos {
		if variants[w] {
			fmt.Printf("  %s\n", w)
		}
	}
}
