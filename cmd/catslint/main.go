// Command catslint runs the project's invariant linter over the module
// tree: the zero-allocation hot path (//cats:hotpath), sync.Pool
// Get/Put pairing, map-iteration determinism, context propagation,
// wall-clock/randomness hygiene, registry handle lifecycles
// (handle-lease), colfmt arena aliasing (arena-escape), obs label
// discipline (metric-discipline), and sticky decode errors
// (sticky-error). It exits 0 when the tree is clean, 1 when there are
// findings, and 2 on a load or usage error.
//
// Usage:
//
//	catslint [-root dir] [-rules r1,r2] [-json] [-list] [config overrides]
//
// Findings print as file:line:col: rule: message; -json emits a JSON
// array instead. Suppress a finding in source with
// //lint:ignore <rule> <reason> on the offending line or the line
// directly above it.
//
// The package-scoping config defaults to the repository's own policy
// (lint.DefaultConfig) and can be overridden per run — mainly so the
// fixture corpus under internal/lint/testdata/src can be linted as its
// own module with its own scoping:
//
//	-det-pkgs        deterministic packages (no-wallclock-rand)
//	-pinned-pkgs     pinned-summation packages (map-range-determinism)
//	-exempt-pkgs     packages excused from no-wallclock-rand
//	-bridges         pkg=fn1+fn2;pkg2=fn wall-clock bridge functions
//	-label-allowlist identifiers vetted as bounded Vec label values
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseBridges parses -bridges: semicolon-separated pkg=fn+fn entries.
func parseBridges(s string) (map[string][]string, error) {
	out := map[string][]string{}
	for _, entry := range strings.Split(s, ";") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		pkg, fns, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad -bridges entry %q (want pkg=fn+fn)", entry)
		}
		for _, fn := range strings.Split(fns, "+") {
			if fn = strings.TrimSpace(fn); fn != "" {
				out[pkg] = append(out[pkg], fn)
			}
		}
	}
	return out, nil
}

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the rules and exit")
	detPkgs := flag.String("det-pkgs", "", "override: comma-separated deterministic package suffixes")
	pinnedPkgs := flag.String("pinned-pkgs", "", "override: comma-separated pinned-summation package suffixes")
	exemptPkgs := flag.String("exempt-pkgs", "", "override: comma-separated wallclock-exempt package suffixes")
	bridges := flag.String("bridges", "", "override: pkg=fn+fn;... wall-clock bridge functions")
	labelAllow := flag.String("label-allowlist", "", "override: comma-separated bounded label identifiers")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-24s %s\n", a.Name, a.Doc)
		}
		return
	}

	keep := map[string]bool{}
	if *rules != "" {
		known := map[string]bool{}
		for _, a := range lint.Analyzers() {
			known[a.Name] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(os.Stderr, "catslint: unknown rule %q (try -list)\n", r)
				os.Exit(2)
			}
			keep[r] = true
		}
	}

	cfg := lint.DefaultConfig
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "det-pkgs":
			cfg.DeterministicPkgs = splitList(*detPkgs)
		case "pinned-pkgs":
			cfg.PinnedOrderPkgs = splitList(*pinnedPkgs)
		case "exempt-pkgs":
			cfg.WallclockExemptPkgs = splitList(*exemptPkgs)
		case "label-allowlist":
			cfg.MetricLabelAllowlist = splitList(*labelAllow)
		case "bridges":
			b, err := parseBridges(*bridges)
			if err != nil {
				fmt.Fprintf(os.Stderr, "catslint: %v\n", err)
				os.Exit(2)
			}
			cfg.WallclockBridges = b
		}
	})

	diags, err := lint.NewRunner().LintModule(*root, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catslint: %v\n", err)
		os.Exit(2)
	}
	if len(keep) > 0 {
		filtered := diags[:0]
		for _, d := range diags {
			// lint-ignore findings (malformed suppressions) always show.
			if keep[d.Rule] || d.Rule == "lint-ignore" {
				filtered = append(filtered, d)
			}
		}
		diags = filtered
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "catslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "catslint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
