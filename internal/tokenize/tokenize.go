// Package tokenize provides dictionary-driven word segmentation for
// Chinese-style e-commerce comment text, plus rune classification
// helpers used by the structural feature extractors.
//
// Comments on the platforms CATS targets are written mostly in Chinese,
// which has no word boundaries. CATS' upstream implementation relied on
// the segmenters embedded in SnowNLP/jieba; this package reimplements
// the same idea with a forward maximum-match (FMM) segmenter over a
// vocabulary dictionary. Latin runs and digit runs are emitted as single
// tokens, punctuation is emitted as punctuation tokens, and CJK runs are
// split against the dictionary with a single-rune fallback.
package tokenize

import (
	"strings"
	"sync/atomic"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	KindWord  Kind = iota // dictionary or fallback word (CJK, latin, digits)
	KindPunct             // punctuation or symbol
	KindSpace             // whitespace run (usually dropped by callers)
)

// Token is a single segmented unit of text.
type Token struct {
	Text string
	Kind Kind
}

// Segmenter splits unsegmented text into word and punctuation tokens
// using forward maximum matching against a dictionary.
//
// A Segmenter is immutable after construction (apart from its call
// counter) and safe for concurrent use by multiple goroutines.
type Segmenter struct {
	dict    map[string]struct{}
	maxLen  int // longest dictionary entry, in runes
	minimum int

	// calls counts segmentation passes, so tests can assert the
	// detection paths segment each comment exactly once.
	calls atomic.Int64
}

// NewSegmenter builds a Segmenter from the given vocabulary. Empty
// entries are ignored. The segmenter works without a dictionary too, in
// which case every CJK rune becomes its own token.
func NewSegmenter(vocab []string) *Segmenter {
	s := &Segmenter{dict: make(map[string]struct{}, len(vocab)), maxLen: 1}
	for _, w := range vocab {
		if w == "" {
			continue
		}
		s.dict[w] = struct{}{}
		if n := len([]rune(w)); n > s.maxLen {
			s.maxLen = n
		}
	}
	return s
}

// Contains reports whether w is a dictionary word.
func (s *Segmenter) Contains(w string) bool {
	_, ok := s.dict[w]
	return ok
}

// DictSize returns the number of dictionary entries.
func (s *Segmenter) DictSize() int { return len(s.dict) }

// Segment splits text into tokens. Whitespace runs are skipped (no
// KindSpace tokens are produced); use SegmentAll to keep them.
func (s *Segmenter) Segment(text string) []Token {
	all := s.segment(text, false)
	return all
}

// SegmentAll splits text into tokens, keeping whitespace runs as
// KindSpace tokens.
func (s *Segmenter) SegmentAll(text string) []Token {
	return s.segment(text, true)
}

// Words segments text and returns only the word tokens' text. This is
// the common entry point for the feature extractor and the semantic
// models: punctuation and whitespace are dropped.
func (s *Segmenter) Words(text string) []string {
	toks := s.segment(text, false)
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == KindWord {
			words = append(words, t.Text)
		}
	}
	return words
}

// Segmentations returns the number of segmentation passes run since
// construction. One Segment/SegmentAll/Words call is one pass.
func (s *Segmenter) Segmentations() int64 { return s.calls.Load() }

func (s *Segmenter) segment(text string, keepSpace bool) []Token {
	s.calls.Add(1)
	runes := []rune(text)
	toks := make([]Token, 0, len(runes)/2+1)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			j := i
			for j < len(runes) && unicode.IsSpace(runes[j]) {
				j++
			}
			if keepSpace {
				toks = append(toks, Token{Text: string(runes[i:j]), Kind: KindSpace})
			}
			i = j
		case IsPunct(r):
			toks = append(toks, Token{Text: string(r), Kind: KindPunct})
			i++
		case isLatin(r):
			j := i
			for j < len(runes) && isLatin(runes[j]) {
				j++
			}
			toks = append(toks, Token{Text: string(runes[i:j]), Kind: KindWord})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(runes) && unicode.IsDigit(runes[j]) {
				j++
			}
			toks = append(toks, Token{Text: string(runes[i:j]), Kind: KindWord})
			i = j
		default:
			// CJK (or anything else): forward maximum match.
			matched := 1
			limit := s.maxLen
			if rem := len(runes) - i; rem < limit {
				limit = rem
			}
			for l := limit; l >= 2; l-- {
				if _, ok := s.dict[string(runes[i:i+l])]; ok {
					matched = l
					break
				}
			}
			toks = append(toks, Token{Text: string(runes[i : i+matched]), Kind: KindWord})
			i += matched
		}
	}
	return toks
}

// punctSet lists CJK and ASCII punctuation commonly found in e-commerce
// comments. unicode.IsPunct misses some full-width symbols (e.g. ～),
// so the set is explicit and IsPunct unions it with the unicode tables.
var punctSet = map[rune]struct{}{}

func init() {
	for _, r := range "，。！？；：、…—～·“”‘’（）《》【】,.!?;:()[]\"'~-*&%$#@^_+=<>/\\|" {
		punctSet[r] = struct{}{}
	}
}

// IsPunct reports whether r is punctuation or a symbol for the purposes
// of the structural features (Fig 2 / averagePunctuationRatio).
func IsPunct(r rune) bool {
	if _, ok := punctSet[r]; ok {
		return true
	}
	return unicode.IsPunct(r) || unicode.IsSymbol(r)
}

func isLatin(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

// CountPunct counts punctuation runes in text without segmenting.
func CountPunct(text string) int {
	n := 0
	for _, r := range text {
		if IsPunct(r) {
			n++
		}
	}
	return n
}

// RuneLen returns the length of text in runes. The paper's comment
// length distributions (Fig 4) are measured in characters, not bytes.
func RuneLen(text string) int {
	n := 0
	for range text {
		n++
	}
	return n
}

// JoinWords concatenates words with no separator, matching how Chinese
// comments are written. Useful in tests and generators.
func JoinWords(words []string) string {
	var b strings.Builder
	for _, w := range words {
		b.WriteString(w)
	}
	return b.String()
}
