package graph

import (
	"math/rand"
	"strconv"
	"testing"
)

// benchEdges synthesizes a planted-ring population shaped like the
// catsbench graph experiment, small enough for bench-smoke.
func benchEdges(users, edges int) *Builder {
	const ringSize, itemsPerRing = 8, 6
	rings := users / 1000
	if rings < 2 {
		rings = 2
	}
	fraudItems := rings * itemsPerRing
	normalItems := edges / 32
	if normalItems < 32 {
		normalItems = 32
	}
	b := NewBuilder(Config{})
	b.Reserve(users, fraudItems+normalItems, edges)
	for i := 0; i < users; i++ {
		b.User("u"+strconv.Itoa(i), int64(100+i%5000))
	}
	for i := 0; i < fraudItems; i++ {
		b.MarkFraud(b.Item("f" + strconv.Itoa(i)))
	}
	for i := 0; i < normalItems; i++ {
		b.Item("n" + strconv.Itoa(i))
	}
	for r := 0; r < rings; r++ {
		for m := 0; m < ringSize; m++ {
			for k := 0; k < itemsPerRing; k++ {
				b.AddEdge(UserID(r*ringSize+m), ItemID(r*itemsPerRing+k))
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	lo := rings * ringSize
	for b.Edges() < edges {
		b.AddEdge(UserID(lo+rng.Intn(users-lo)), ItemID(fraudItems+rng.Intn(normalItems)))
	}
	return b
}

func BenchmarkBuildCSR(b *testing.B) {
	const users, edges = 20000, 200000
	builders := make([]*Builder, b.N)
	for i := range builders {
		builders[i] = benchEdges(users, edges)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = builders[i].Build()
	}
}

func BenchmarkMinePairs(b *testing.B) {
	g := benchEdges(20000, 200000).Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, _, _ := g.minePairs()
		if t.n == 0 {
			b.Fatal("no pairs mined")
		}
	}
}

func BenchmarkCluster(b *testing.B) {
	g := benchEdges(20000, 200000).Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := g.Cluster()
		if len(res.Report.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}
