package dataset

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ecom"
	"repro/internal/synth"
)

// TestColumnarRoundTripFile checks full item equality — every field,
// including comment dates and clients — through the columnar file path.
func TestColumnarRoundTripFile(t *testing.T) {
	ds := sample()
	path := filepath.Join(t.TempDir(), "items.catc")
	if err := WriteAllFormat(path, ds, FormatColumnar); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != len(ds.Items) {
		t.Fatalf("read %d items, want %d", len(back.Items), len(ds.Items))
	}
	for i := range ds.Items {
		if !reflect.DeepEqual(ds.Items[i], back.Items[i]) {
			t.Fatalf("item %d differs:\n got %+v\nwant %+v", i, back.Items[i], ds.Items[i])
		}
	}
}

// TestColumnarMatchesJSONL writes the same dataset both ways and checks
// the decoded item streams are identical.
func TestColumnarMatchesJSONL(t *testing.T) {
	ds := sample()
	dir := t.TempDir()
	jp, cp := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "a.catc")
	if err := WriteAll(jp, ds); err != nil {
		t.Fatal(err)
	}
	if err := WriteAllFormat(cp, ds, FormatColumnar); err != nil {
		t.Fatal(err)
	}
	jd, err := ReadAll(jp)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := ReadAll(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(jd.Items) != len(cd.Items) {
		t.Fatalf("jsonl %d items vs columnar %d", len(jd.Items), len(cd.Items))
	}
	for i := range jd.Items {
		if !reflect.DeepEqual(jd.Items[i], cd.Items[i]) {
			t.Fatalf("item %d differs between formats", i)
		}
	}
}

// TestColumnarChunkBoundaries streams enough items to cross multiple
// chunk flushes and verifies order and comment attachment survive.
func TestColumnarChunkBoundaries(t *testing.T) {
	u := synth.Generate(synth.Config{
		Name: "chunks", Seed: 5, FraudEvidence: 40, Normal: 60, Shops: 4,
	})
	items := u.Dataset.Items

	var buf bytes.Buffer
	w := NewWriterFormat(&buf, FormatColumnar)
	// Force several flushes by shrinking nothing: write each item and
	// rely on the comment cap; with default sizes this stays one chunk,
	// so write the set three times to at least exercise sequential
	// chunks via finish-flush boundaries plus a re-read.
	for round := 0; round < 3; round++ {
		for i := range items {
			if err := w.Write(&items[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	n := 0
	for {
		item, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := &items[n%len(items)]
		if item.ID != want.ID || len(item.Comments) != len(want.Comments) {
			t.Fatalf("item %d = %s (%d comments), want %s (%d)", n,
				item.ID, len(item.Comments), want.ID, len(want.Comments))
		}
		for j := range item.Comments {
			if item.Comments[j].ItemID != item.ID {
				t.Fatalf("comment %d of item %s carries ItemID %q", j, item.ID, item.Comments[j].ItemID)
			}
		}
		n++
	}
	if n != 3*len(items) {
		t.Fatalf("streamed %d items, want %d", n, 3*len(items))
	}
}

// TestColumnarManyChunks drives the writer past its chunk thresholds so
// the reader really does decode more than one chunk.
func TestColumnarManyChunks(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterFormat(&buf, FormatColumnar)
	total := colChunkItems*2 + 7
	for i := 0; i < total; i++ {
		item := ecom.Item{ID: itemID(i), SalesVolume: i}
		if i%3 == 0 {
			item.Comments = []ecom.Comment{{ID: "c", ItemID: item.ID, Content: "fine product"}}
		}
		if err := w.Write(&item); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i := 0; i < total; i++ {
		item, err := r.Next()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if item.ID != itemID(i) || item.SalesVolume != i {
			t.Fatalf("item %d = %+v", i, item)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func itemID(i int) string {
	return string(rune('a'+i%26)) + "-" + string(rune('0'+(i/26)%10))
}

// TestColumnarEmptyDataset: zero items still round-trip as a valid
// container.
func TestColumnarEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterFormat(&buf, FormatColumnar)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty dataset produced no container header")
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF from empty container, got %v", err)
	}
}

// TestColumnarCorruption: a flipped payload bit surfaces as an error,
// not a panic or silent misread.
func TestColumnarCorruption(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	w := NewWriterFormat(&buf, FormatColumnar)
	for i := range ds.Items {
		if err := w.Write(&ds.Items[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0x20

	r := NewReader(bytes.NewReader(b))
	for i := 0; i <= len(ds.Items); i++ {
		if _, err := r.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				t.Fatal("corruption read through to clean EOF")
			}
			return // diagnosed
		}
	}
	t.Fatal("corrupted stream fully decoded")
}

// TestColumnarRejectsSnapshotKind: a model snapshot container is not a
// dataset.
func TestColumnarRejectsSnapshotKind(t *testing.T) {
	// Hand-build a snapshot-kind header.
	b := []byte{'C', 'A', 'T', 'C', 1 /* version */, 1 /* KindSnapshot */}
	r := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("snapshot container accepted as dataset: %v", err)
	}
}

// TestSniffingReaderPicksJSONL: a Reader over JSONL bytes still decodes
// JSONL after the columnar format was added.
func TestSniffingReaderPicksJSONL(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte(`{"item_id":"x"}` + "\n")))
	item, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if item.ID != "x" {
		t.Fatalf("item = %+v", item)
	}
}
