// Package colfix is a catslint fixture standing in for internal/colfmt:
// a sticky-error decoder whose StringCol hands out arena-aliased
// strings. The arena-escape and sticky-error fixtures import it so the
// analyzers resolve the Dec type and its getters structurally, the same
// way they see the real colfmt.
package colfix

// Dec is a stand-in sticky decoder over a string arena.
type Dec struct {
	arena string
	off   int
	err   error
}

// NewDec opens a decoder over arena.
func NewDec(arena string) *Dec { return &Dec{arena: arena} }

// Uvarint decodes one counter; zero after the first error.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	d.off++
	return uint64(d.off)
}

// Str decodes one owned (copied) string.
func (d *Dec) Str() string {
	if d.err != nil || d.off >= len(d.arena) {
		return ""
	}
	s := string(d.arena[d.off])
	d.off++
	return s
}

// StringCol decodes n strings that alias the arena — valid only while
// the arena's owner keeps it alive.
func (d *Dec) StringCol(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n && d.off < len(d.arena); i++ {
		out = append(out, d.arena[d.off:d.off+1])
		d.off++
	}
	return out
}

// Err reports the sticky error.
func (d *Dec) Err() error { return d.err }

// Done is Err for the end of a decode scope.
func (d *Dec) Done() error { return d.err }
