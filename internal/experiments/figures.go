package experiments

import (
	"fmt"
	"strings"

	"repro/internal/ecom"
	"repro/internal/features"
	"repro/internal/ml/gbt"
	"repro/internal/stats"
	"repro/internal/synth"
)

// DistributionResult holds one Fig 1–5 style fraud-vs-normal comment
// distribution: histograms over a fixed axis plus the KS separation.
type DistributionResult struct {
	Figure  string
	Measure string
	Lo, Hi  float64
	Bins    int
	Fraud   *stats.Histogram
	Normal  *stats.Histogram
	// KS is the two-sample Kolmogorov–Smirnov distance between the
	// fraud and normal samples: the quantitative version of "the
	// distributions differ".
	KS          float64
	FraudCount  int
	NormalCount int
}

// String prints the figure reproduction: modes, KS, and a small ASCII
// density plot.
func (r *DistributionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig %s — %s distribution (fraud n=%d, normal n=%d, KS=%.3f)\n",
		r.Figure, r.Measure, r.FraudCount, r.NormalCount, r.KS)
	fmt.Fprintf(&b, "  fraud mode ≈ %.3g, normal mode ≈ %.3g\n", r.Fraud.Mode(), r.Normal.Mode())
	b.WriteString(indent(stats.Render([]string{"fraud", "normal"}, []*stats.Histogram{r.Fraud, r.Normal}, 40), "  "))
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// commentMeasure extracts one scalar per comment over a set of items.
type commentMeasure func(features.CommentStructure) float64

// commentDistribution samples per-comment structure measurements for
// fraud and normal items of a universe.
func (l *Lab) commentDistribution(u *synth.Universe, figure, name string, lo, hi float64, bins int, f commentMeasure) (*DistributionResult, error) {
	det, err := l.detectorForFeatures()
	if err != nil {
		return nil, err
	}
	ex := det.Extractor()
	fraud, normal := sampleSplit(u, l.cfg.SampleItems)
	collect := func(items []*ecom.Item) []float64 {
		var out []float64
		for _, it := range items {
			for i := range it.Comments {
				out = append(out, f(ex.CommentStructure(it.Comments[i].Content)))
			}
		}
		return out
	}
	fv, nv := collect(fraud), collect(normal)
	return &DistributionResult{
		Figure: figure, Measure: name, Lo: lo, Hi: hi, Bins: bins,
		Fraud:  stats.NewHistogram(fv, lo, hi, bins),
		Normal: stats.NewHistogram(nv, lo, hi, bins),
		KS:     stats.KS(fv, nv), FraudCount: len(fv), NormalCount: len(nv),
	}, nil
}

// Fig1 reproduces the comment sentiment distribution (axis [0,1]).
func (l *Lab) Fig1() (*DistributionResult, error) {
	return l.commentDistribution(l.D1(), "1", "comment sentiment", 0, 1, 20,
		func(cs features.CommentStructure) float64 { return cs.Sentiment })
}

// Fig2 reproduces the punctuation-count distribution (axis [0,50]).
func (l *Lab) Fig2() (*DistributionResult, error) {
	return l.commentDistribution(l.D1(), "2", "punctuation count", 0, 50, 25,
		func(cs features.CommentStructure) float64 { return float64(cs.PunctCount) })
}

// Fig3 reproduces the comment entropy distribution (axis [0,8]).
func (l *Lab) Fig3() (*DistributionResult, error) {
	return l.commentDistribution(l.D1(), "3", "comment entropy", 0, 8, 16,
		func(cs features.CommentStructure) float64 { return cs.Entropy })
}

// Fig4 reproduces the comment length distribution (axis [0,300]).
func (l *Lab) Fig4() (*DistributionResult, error) {
	return l.commentDistribution(l.D1(), "4", "comment length", 0, 300, 30,
		func(cs features.CommentStructure) float64 { return float64(cs.RuneLength) })
}

// Fig5 reproduces the unique-word-ratio distribution (axis [0,1]).
func (l *Lab) Fig5() (*DistributionResult, error) {
	return l.commentDistribution(l.D1(), "5", "unique word ratio", 0, 1, 20,
		func(cs features.CommentStructure) float64 { return cs.UniqueWordRatio })
}

// Fig7Result is the detector's feature importance (split counts).
type Fig7Result struct {
	Importance []gbt.Importance
}

// Fig7 trains the boosted-tree detector on D0 and reads its
// split-count importance.
func (l *Lab) Fig7() (*Fig7Result, error) {
	det, err := l.System()
	if err != nil {
		return nil, err
	}
	g, ok := det.Classifier().(*gbt.Classifier)
	if !ok {
		return nil, fmt.Errorf("fig7: detector classifier is %T, want boosted trees", det.Classifier())
	}
	imp, err := g.FeatureImportance()
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Importance: imp}, nil
}

// String prints the Fig 7 reproduction as a bar list.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 7 — feature importance (split counts)\n")
	max := 1
	if len(r.Importance) > 0 && r.Importance[0].Splits > 0 {
		max = r.Importance[0].Splits
	}
	for _, e := range r.Importance {
		bar := strings.Repeat("#", e.Splits*40/max)
		fmt.Fprintf(&b, "  %-32s %5d |%s\n", e.Feature, e.Splits, bar)
	}
	return b.String()
}

// WordCloudResult reproduces Figs 8/9 and Appendix Tables VIII/IX: the
// top-k most frequent words in fraud and normal items' comments on both
// platforms, plus the share of the top-50 that are positive words.
type WordCloudResult struct {
	TopK int
	// Platform → class → ranked words.
	FraudTaobao, FraudEPlat   []stats.WordCount
	NormalTaobao, NormalEPlat []stats.WordCount
	// PositiveShare: fraction of top-k fraud words that are positive
	// (the paper: the top-50 fraud words are positive words occupying
	// ~28% of the total).
	PositiveShareTaobao, PositiveShareEPlat float64
	// NormalHasNegatives reports whether negative words appear among
	// the normal items' frequent words (没用/不好 in Fig 9).
	NormalHasNegTaobao, NormalHasNegEPlat bool
	// Jaccard is the overlap of the two platforms' fraud top-k sets —
	// "the word distribution ... is almost the same".
	Jaccard float64
}

// Fig8 runs the word-cloud analysis over D1 (Taobao) and the
// E-platform universe.
func (l *Lab) Fig8() (*WordCloudResult, error) {
	const topK = 50
	seg := l.Segmenter()
	bank := l.Bank()
	// Connective/function words are excluded, as word-cloud analyses
	// conventionally do (the paper's Appendix lists contain content
	// words only).
	stop := map[string]bool{}
	for _, w := range bank.Function {
		stop[w] = true
	}
	counts := func(items []*ecom.Item) map[string]int {
		m := map[string]int{}
		for _, it := range items {
			for i := range it.Comments {
				for _, w := range seg.Words(it.Comments[i].Content) {
					if !stop[w] {
						m[w]++
					}
				}
			}
		}
		return m
	}
	ft, nt := sampleSplit(l.D1(), l.cfg.SampleItems)
	fe, ne := sampleSplit(l.EPlat(), l.cfg.SampleItems)
	res := &WordCloudResult{
		TopK:         topK,
		FraudTaobao:  stats.TopWords(counts(ft), topK),
		NormalTaobao: stats.TopWords(counts(nt), topK),
		FraudEPlat:   stats.TopWords(counts(fe), topK),
		NormalEPlat:  stats.TopWords(counts(ne), topK),
	}
	posShare := func(ws []stats.WordCount) float64 {
		if len(ws) == 0 {
			return 0
		}
		n := 0
		for _, wc := range ws {
			if bank.IsPositive(wc.Word) {
				n++
			}
		}
		return float64(n) / float64(len(ws))
	}
	hasNeg := func(ws []stats.WordCount) bool {
		for _, wc := range ws {
			if bank.IsNegative(wc.Word) {
				return true
			}
		}
		return false
	}
	res.PositiveShareTaobao = posShare(res.FraudTaobao)
	res.PositiveShareEPlat = posShare(res.FraudEPlat)
	res.NormalHasNegTaobao = hasNeg(res.NormalTaobao)
	res.NormalHasNegEPlat = hasNeg(res.NormalEPlat)

	setT := map[string]bool{}
	for _, wc := range res.FraudTaobao {
		setT[wc.Word] = true
	}
	inter := 0
	for _, wc := range res.FraudEPlat {
		if setT[wc.Word] {
			inter++
		}
	}
	union := len(res.FraudTaobao) + len(res.FraudEPlat) - inter
	if union > 0 {
		res.Jaccard = float64(inter) / float64(union)
	}
	return res, nil
}

// String prints the Figs 8/9 + Appendix reproduction.
func (r *WordCloudResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figs 8/9 + Appendix — top-%d comment words\n", r.TopK)
	fmt.Fprintf(&b, "  fraud/Taobao positive share: %s    fraud/E-platform positive share: %s\n",
		percent(r.PositiveShareTaobao), percent(r.PositiveShareEPlat))
	fmt.Fprintf(&b, "  normal top words contain negatives: Taobao=%v  E-platform=%v\n",
		r.NormalHasNegTaobao, r.NormalHasNegEPlat)
	fmt.Fprintf(&b, "  fraud top-%d cross-platform Jaccard overlap: %.2f\n", r.TopK, r.Jaccard)
	row := func(label string, ws []stats.WordCount) {
		var words []string
		for _, wc := range ws[:min(10, len(ws))] {
			words = append(words, wc.Word)
		}
		fmt.Fprintf(&b, "  %-18s %s\n", label, strings.Join(words, " "))
	}
	row("fraud/Taobao:", r.FraudTaobao)
	row("fraud/E-plat:", r.FraudEPlat)
	row("normal/Taobao:", r.NormalTaobao)
	row("normal/E-plat:", r.NormalEPlat)
	return b.String()
}

// Fig10Result compares comment sentiment distributions across classes
// and platforms (Fig 10): E-platform's detected fraud/normal items
// against Taobao's labeled ones.
type Fig10Result struct {
	FraudEPlat, NormalEPlat   *stats.Histogram
	FraudTaobao, NormalTaobao *stats.Histogram
	// FraudPositiveShare is the fraction of detected-fraud comments
	// with sentiment > 0.5 on E-platform (the paper: > 99.8%).
	FraudPositiveShare float64
	// CrossPlatformKS measures agreement between the two platforms'
	// fraud sentiment distributions (small = agree).
	CrossPlatformKS float64
	// ClassKS measures fraud-vs-normal separation on E-platform.
	ClassKS float64
}

// Fig10 runs CATS on the E-platform universe (at the high-confidence
// reporting threshold) and compares the comment sentiment distributions
// of its *detected* fraud/normal items with Taobao's labeled ones.
func (l *Lab) Fig10() (*Fig10Result, error) {
	det, err := l.EPlatSystem()
	if err != nil {
		return nil, err
	}
	ex := det.Extractor()
	ep := l.EPlat()
	dets, err := det.Detect(ep.Dataset.Items, l.cfg.Workers)
	if err != nil {
		return nil, err
	}
	var fraudE, normalE []float64
	fraudCap := l.cfg.SampleItems
	normalCap := l.cfg.SampleItems
	for i := range ep.Dataset.Items {
		it := &ep.Dataset.Items[i]
		isFraud := dets[i].IsFraud
		if isFraud && fraudCap <= 0 || !isFraud && normalCap <= 0 {
			continue
		}
		if isFraud {
			fraudCap--
		} else {
			normalCap--
		}
		for j := range it.Comments {
			s := ex.CommentStructure(it.Comments[j].Content).Sentiment
			if isFraud {
				fraudE = append(fraudE, s)
			} else {
				normalE = append(normalE, s)
			}
		}
	}
	var fraudT, normalT []float64
	ft, nt := sampleSplit(l.D1(), l.cfg.SampleItems)
	for _, it := range ft {
		for j := range it.Comments {
			fraudT = append(fraudT, ex.CommentStructure(it.Comments[j].Content).Sentiment)
		}
	}
	for _, it := range nt {
		for j := range it.Comments {
			normalT = append(normalT, ex.CommentStructure(it.Comments[j].Content).Sentiment)
		}
	}
	pos := 0
	for _, s := range fraudE {
		if s > 0.5 {
			pos++
		}
	}
	res := &Fig10Result{
		FraudEPlat:      stats.NewHistogram(fraudE, 0, 1, 20),
		NormalEPlat:     stats.NewHistogram(normalE, 0, 1, 20),
		FraudTaobao:     stats.NewHistogram(fraudT, 0, 1, 20),
		NormalTaobao:    stats.NewHistogram(normalT, 0, 1, 20),
		CrossPlatformKS: stats.KS(fraudE, fraudT),
		ClassKS:         stats.KS(fraudE, normalE),
	}
	if len(fraudE) > 0 {
		res.FraudPositiveShare = float64(pos) / float64(len(fraudE))
	}
	return res, nil
}

// String prints the Fig 10 reproduction.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 10 — cross-platform comment sentiment distributions\n")
	fmt.Fprintf(&b, "  detected-fraud comments positive on E-platform: %.1f%% (paper: >99.8%%)\n", r.FraudPositiveShare*100)
	fmt.Fprintf(&b, "  fraud sentiment KS(E-platform vs Taobao) = %.3f (small = platforms agree)\n", r.CrossPlatformKS)
	fmt.Fprintf(&b, "  fraud-vs-normal sentiment KS on E-platform = %.3f (large = classes separate)\n", r.ClassKS)
	fmt.Fprintf(&b, "  modes: fraud E=%.2f T=%.2f, normal E=%.2f T=%.2f\n",
		r.FraudEPlat.Mode(), r.FraudTaobao.Mode(), r.NormalEPlat.Mode(), r.NormalTaobao.Mode())
	return b.String()
}

// Fig13Feature is one feature's cross-platform distribution comparison.
type Fig13Feature struct {
	Name string
	// ClassKS is the fraud-vs-normal separation on E-platform,
	// TaobaoClassKS the same on Taobao (the paper: the class
	// differences look alike on both platforms), and PlatformKS the
	// fraud-fraud agreement across platforms (small = agree).
	ClassKS       float64
	TaobaoClassKS float64
	PlatformKS    float64
}

// Fig13Result compares all 11 feature distributions across classes and
// platforms (Figs 13(a)–(k)).
type Fig13Result struct {
	Features []Fig13Feature
}

// Fig13 computes item-level feature distributions for fraud and normal
// items on both platforms and reports the KS comparisons the paper
// reads off its subplots.
func (l *Lab) Fig13() (*Fig13Result, error) {
	det, err := l.detectorForFeatures()
	if err != nil {
		return nil, err
	}
	vectors := func(items []*ecom.Item) [][]float64 {
		out := make([][]float64, len(items))
		for i, it := range items {
			out[i] = det.Extractor().Vector(it)
		}
		return out
	}
	ft, nt := sampleSplit(l.D1(), l.cfg.SampleItems)
	fe, ne := sampleSplit(l.EPlat(), l.cfg.SampleItems)
	vft, vnt, vfe, vne := vectors(ft), vectors(nt), vectors(fe), vectors(ne)
	column := func(vs [][]float64, j int) []float64 {
		out := make([]float64, len(vs))
		for i := range vs {
			out[i] = vs[i][j]
		}
		return out
	}
	res := &Fig13Result{}
	for j, name := range features.Names {
		res.Features = append(res.Features, Fig13Feature{
			Name:          name,
			ClassKS:       stats.KS(column(vfe, j), column(vne, j)),
			TaobaoClassKS: stats.KS(column(vft, j), column(vnt, j)),
			PlatformKS:    stats.KS(column(vfe, j), column(vft, j)),
		})
	}
	return res, nil
}

// String prints the Fig 13 reproduction.
func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 13 — feature distributions: class separation vs platform agreement (KS)\n")
	fmt.Fprintf(&b, "  %-32s %-20s %-20s %-20s\n", "feature", "fraud-vs-normal (E)", "fraud-vs-normal (T)", "fraud: E vs T")
	for _, f := range r.Features {
		fmt.Fprintf(&b, "  %-32s %-20.3f %-20.3f %-20.3f\n", f.Name, f.ClassKS, f.TaobaoClassKS, f.PlatformKS)
	}
	return b.String()
}
