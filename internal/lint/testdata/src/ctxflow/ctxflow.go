// Package ctxflow is a catslint fixture: a function that receives a
// context and then detaches its callees from it.
package ctxflow

import "context"

// query pretends to hit a cancellable backend.
func query(ctx context.Context, q string) string {
	_ = ctx
	return q
}

// Handler receives a context and drops it twice.
func Handler(ctx context.Context, q string) string {
	a := query(context.Background(), q)
	b := query(detach(), q)
	c := query(ctx, q)
	return a + b + c
}

// detach has no ctx parameter, so minting a root context here is not
// the rule's business: clean.
func detach() context.Context {
	return context.TODO()
}
