package dispatch

import "repro/internal/obs"

// Dispatcher instrumentation (DESIGN.md §11). Handles are resolved once
// at package init on the process-wide registry; every update on the
// request path is a lock-free atomic. The four headline signals an
// operator tunes the batcher by: queue depth (admission headroom),
// batch-size distribution (is coalescing actually happening), shed
// counts by reason (how overload degrades), and coalesce hits (how much
// work the singleflight map is saving).
var (
	mQueueDepth = obs.Default.Gauge("cats_serve_queue_depth",
		"Items currently enqueued and awaiting batch dispatch.")

	mBatches = obs.Default.Counter("cats_serve_batches_total",
		"Fused scoring batches dispatched by the serving batcher.")
	mBatchSize = obs.Default.Histogram("cats_serve_batch_size",
		"Items per dispatched serving batch (bypassed oversize requests included).",
		obs.SizeBuckets)

	shedTotal = obs.Default.CounterVec("cats_serve_shed_total",
		"Requests shed by admission control instead of being queued, by "+
			"reason: queue_full (no queue headroom for the request's new "+
			"items), deadline (the request's context deadline cannot survive "+
			"a full flush wait), closed (dispatcher shutting down).", "reason")
	mShedQueueFull = shedTotal.With("queue_full")
	mShedDeadline  = shedTotal.With("deadline")
	mShedClosed    = shedTotal.With("closed")

	mCoalesced = obs.Default.Counter("cats_serve_coalesced_total",
		"Submitted items that attached to an identical in-flight item via "+
			"the singleflight map instead of being analyzed again.")
	mBypass = obs.Default.Counter("cats_serve_bypass_total",
		"Requests at or above the max batch size dispatched directly, "+
			"skipping the queue (they are already a full batch).")

	mWait = obs.Default.Histogram("cats_serve_wait_seconds",
		"Time items spend queued before their batch dispatches — bounded "+
			"by the max-wait flush policy.", obs.LatencyBuckets)
)
