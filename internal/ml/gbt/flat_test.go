package gbt

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func flatTestDataset(n, nf int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{}
	for i := 0; i < n; i++ {
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.NormFloat64() + float64(i%2)
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, i%2)
	}
	return ds
}

// TestFlatMatchesPointerWalk: the flattened ensemble's margins must be
// bit-identical to the retained pointer-walk reference for every row,
// including staged prediction at every tree count.
func TestFlatMatchesPointerWalk(t *testing.T) {
	ds := flatTestDataset(400, 7, 3)
	c := New(Config{Rounds: 40, MaxDepth: 4, Subsample: 0.8, ColSample: 0.6, Seed: 5})
	if err := c.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if c.flat == nil {
		t.Fatal("Fit did not build the flat ensemble")
	}
	for i, x := range ds.X {
		if got, want := c.PredictMargin(x), c.predictMarginTrees(x); got != want {
			t.Fatalf("row %d: flat margin %v != pointer margin %v", i, got, want)
		}
	}
	// Staged margins at every prefix length.
	x := ds.X[17]
	for n := 0; n <= c.NumTrees(); n++ {
		m := c.baseScore
		for i := 0; i < n; i++ {
			m += c.cfg.LearningRate * predictNode(c.trees[i], x)
		}
		if got, want := c.PredictProbaAt(x, n), sigmoid(m); got != want {
			t.Fatalf("staged n=%d: flat %v != pointer %v", n, got, want)
		}
	}
}

// TestPredictBatchMatchesSingle: batch prediction must be bit-identical
// to per-row calls, for both margins and probabilities, with and
// without a caller-provided output buffer.
func TestPredictBatchMatchesSingle(t *testing.T) {
	ds := flatTestDataset(300, 5, 9)
	c := New(Config{Rounds: 25, MaxDepth: 3, Seed: 2})
	if err := c.Fit(ds); err != nil {
		t.Fatal(err)
	}
	margins := c.PredictMarginBatch(ds.X, nil)
	buf := make([]float64, len(ds.X))
	probas := c.PredictProbaBatch(ds.X, buf)
	if &probas[0] != &buf[0] {
		t.Fatal("PredictProbaBatch did not reuse the provided buffer")
	}
	for i, x := range ds.X {
		if margins[i] != c.PredictMargin(x) {
			t.Fatalf("row %d: batch margin %v != single %v", i, margins[i], c.PredictMargin(x))
		}
		if probas[i] != c.PredictProba(x) {
			t.Fatalf("row %d: batch proba %v != single %v", i, probas[i], c.PredictProba(x))
		}
	}
}

// TestSnapshotRoundTripFlat: a classifier rebuilt from its snapshot
// must predict through a rebuilt flat ensemble, bit-identical to the
// original.
func TestSnapshotRoundTripFlat(t *testing.T) {
	ds := flatTestDataset(200, 6, 4)
	c := New(Config{Rounds: 15, MaxDepth: 3, Seed: 8})
	if err := c.Fit(ds); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.flat == nil {
		t.Fatal("FromSnapshot did not build the flat ensemble")
	}
	for i, x := range ds.X {
		if got, want := back.PredictMargin(x), c.PredictMargin(x); got != want {
			t.Fatalf("row %d: snapshot margin %v != original %v", i, got, want)
		}
	}
}

// TestPredictZeroAlloc: single and batch prediction over the flat
// ensemble must not allocate (beyond a caller-provided buffer).
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	ds := flatTestDataset(64, 6, 12)
	c := New(Config{Rounds: 20, MaxDepth: 4, Seed: 3})
	if err := c.Fit(ds); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(ds.X))
	allocs := testing.AllocsPerRun(50, func() {
		_ = c.PredictMargin(ds.X[0])
		_ = c.PredictProbaBatch(ds.X, out)
	})
	if allocs > 0 {
		t.Fatalf("prediction allocated %.1f times per run, want 0", allocs)
	}
}
