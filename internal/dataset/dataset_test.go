package dataset

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ecom"
	"repro/internal/synth"
)

func sample() *ecom.Dataset {
	u := synth.Generate(synth.Config{
		Name: "sample", Seed: 2, FraudEvidence: 5, Normal: 10, Shops: 2,
	})
	return &u.Dataset
}

func TestRoundTripFile(t *testing.T) {
	ds := sample()
	path := filepath.Join(t.TempDir(), "items.jsonl")
	if err := WriteAll(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != len(ds.Items) {
		t.Fatalf("read %d items, want %d", len(back.Items), len(ds.Items))
	}
	for i := range ds.Items {
		a, b := &ds.Items[i], &back.Items[i]
		if a.ID != b.ID || a.Label != b.Label || len(a.Comments) != len(b.Comments) {
			t.Fatalf("item %d corrupted: %+v vs %+v", i, a.ID, b.ID)
		}
		if len(a.Comments) > 0 && a.Comments[0].Content != b.Comments[0].Content {
			t.Fatalf("comment content corrupted at item %d", i)
		}
	}
}

func TestStreamingWriterReader(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range ds.Items {
		if err := w.Write(&ds.Items[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(ds.Items) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	n := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(ds.Items) {
		t.Fatalf("streamed %d items, want %d", n, len(ds.Items))
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	input := `{"item_id":"a"}` + "\n\n" + `{"item_id":"b"}` + "\n"
	r := NewReader(strings.NewReader(input))
	a, err := r.Next()
	if err != nil || a.ID != "a" {
		t.Fatalf("first item: %v %v", a, err)
	}
	b, err := r.Next()
	if err != nil || b.ID != "b" {
		t.Fatalf("second item: %v %v", b, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderBadJSON(t *testing.T) {
	r := NewReader(strings.NewReader("{not json}\n"))
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupt line should error")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("Open(missing) should error")
	}
}

func TestCreateOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := &ecom.Dataset{Items: []ecom.Item{{ID: "only"}}}
	if err := WriteAll(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != 1 || back.Items[0].ID != "only" {
		t.Fatalf("overwrite failed: %+v", back.Items)
	}
}

func TestLongLine(t *testing.T) {
	// A single item with a very long comment must survive the scanner
	// buffer configuration.
	long := strings.Repeat("好评很好", 50000) // ~600 KB of UTF-8
	ds := &ecom.Dataset{Items: []ecom.Item{{
		ID:       "big",
		Comments: []ecom.Comment{{ID: "c", Content: long}},
	}}}
	path := filepath.Join(t.TempDir(), "big.jsonl")
	if err := WriteAll(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Items[0].Comments[0].Content != long {
		t.Fatal("long comment corrupted")
	}
}

func TestWriterErrorSticky(t *testing.T) {
	// After a write failure the Writer latches the error and refuses
	// further writes.
	w := NewWriter(failWriter{})
	item := &ecom.Item{ID: "x"}
	// Buffer absorbs the first writes; force a flush through Close.
	for i := 0; i < 10000; i++ {
		if err := w.Write(item); err != nil {
			break
		}
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close should surface the underlying write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestCreateBadPath(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Fatal("Create into missing directory should error")
	}
}

func TestReadAllMissing(t *testing.T) {
	if _, err := ReadAll(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("ReadAll(missing) should error")
	}
}

func TestWriteAllPropagatesWriteError(t *testing.T) {
	// WriteAll to a directory path fails at Create.
	dir := t.TempDir()
	ds := &ecom.Dataset{Items: []ecom.Item{{ID: "a"}}}
	if err := WriteAll(dir, ds); err == nil {
		t.Fatal("WriteAll to a directory should error")
	}
}
