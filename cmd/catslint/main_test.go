package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the catslint CLI: a child process
// with CATSLINT_RUN_MAIN set runs main() verbatim, which is what lets
// the tests below observe real exit codes without building a binary.
func TestMain(m *testing.M) {
	if os.Getenv("CATSLINT_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCatslint re-execs the test binary as the CLI and returns its
// stdout, stderr, and exit code.
func runCatslint(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CATSLINT_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// corpusRoot is the fixture corpus, its own module (module fix).
func corpusRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// corpusArgs is the fixture corpus's scoping config — the CLI flag
// spelling of the lint package's fixtureCfg.
func corpusArgs(root string, extra ...string) []string {
	return append([]string{
		"-root", root,
		"-det-pkgs", "fix/wallclock,fix/obsfix,fix/obsbridge",
		"-pinned-pkgs", "fix/maprange",
		"-exempt-pkgs", "fix/obsfix",
		"-bridges", "fix/obsfix=StartSpan",
		"-label-allowlist", "tenant,route",
	}, extra...)
}

func TestExitCodeCleanTree(t *testing.T) {
	stdout, stderr, code := runCatslint(t, "-root", filepath.Join("testdata", "cleanmod"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed findings:\n%s", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	stdout, stderr, code := runCatslint(t, corpusArgs(corpusRoot(t))...)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "handle-lease") || !strings.Contains(stdout, "arena-escape") {
		t.Fatalf("corpus findings missing expected rules:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("stderr missing findings summary: %s", stderr)
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-rules", "no-such-rule", "-root", filepath.Join("testdata", "cleanmod")},
		{"-root", filepath.Join("testdata", "does-not-exist")},
		{"-no-such-flag"},
		{"-bridges", "missing-equals", "-root", filepath.Join("testdata", "cleanmod")},
	} {
		_, stderr, code := runCatslint(t, args...)
		if code != 2 {
			t.Errorf("catslint %v: exit = %d, want 2\nstderr: %s", args, code, stderr)
		}
	}
}

func TestListNamesEveryRule(t *testing.T) {
	stdout, _, code := runCatslint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{
		"hotpath-alloc", "pool-pairing", "map-range-determinism",
		"ctx-propagation", "no-wallclock-rand", "handle-lease",
		"arena-escape", "metric-discipline", "sticky-error",
	} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output missing %s", rule)
		}
	}
}

// TestJSONGolden pins the -json output schema byte for byte on a small
// stable slice of the corpus (pool-pairing plus the always-shown
// lint-ignore finding). File paths are normalized to SRC so the golden
// is location-independent.
func TestJSONGolden(t *testing.T) {
	root := corpusRoot(t)
	stdout, stderr, code := runCatslint(t, corpusArgs(root, "-json", "-rules", "pool-pairing")...)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}

	// Schema check: exactly the five published keys on every finding.
	var raw []map[string]any
	if err := json.Unmarshal([]byte(stdout), &raw); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	for _, f := range raw {
		if len(f) != 5 {
			t.Fatalf("finding has %d keys, want 5 (rule, file, line, col, message): %v", len(f), f)
		}
		for _, key := range []string{"rule", "file", "line", "col", "message"} {
			if _, ok := f[key]; !ok {
				t.Fatalf("finding missing key %q: %v", key, f)
			}
		}
	}

	got := strings.ReplaceAll(stdout, root, "SRC")
	goldenPath := filepath.Join("testdata", "findings.golden.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
	}
}

// TestJSONCleanTreeIsEmptyArray pins the clean-tree -json shape: an
// empty array, not null.
func TestJSONCleanTreeIsEmptyArray(t *testing.T) {
	stdout, _, code := runCatslint(t, "-json", "-root", filepath.Join("testdata", "cleanmod"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean -json output = %q, want []", stdout)
	}
}
