package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/ecom"
	"repro/internal/service"
	"repro/internal/synth"
)

// ServeRow is one serving mode's measurement under the concurrent
// hot-item workload.
type ServeRow struct {
	Mode           string
	Clients        int
	Requests       int
	Shed           int
	Elapsed        time.Duration
	RequestsPerSec float64
	ShedRate       float64
	P50            time.Duration
	P99            time.Duration
	Batches        int64 // fused scoring calls (batched mode only)
	Coalesced      int64 // requests served by another request's flight
}

// ServeResult compares the serving layer with and without the batching
// dispatcher on the same model and the same traffic: 64 concurrent
// clients firing single-item detect requests drawn from a small pool of
// comment-heavy "trending" items — the production regime where many
// pipeline shards ask about the same items at once. Unbatched, every
// request pays a full scoring pass; batched, concurrent duplicates
// coalesce onto one flight and distinct items fuse into shared batches.
type ServeResult struct {
	Rows    []ServeRow
	Speedup float64 // batched req/s over unbatched req/s
}

// serveClients is the concurrency level of the serving benchmark; the
// acceptance target (batched ≥ 2x unbatched) is defined at this level.
const serveClients = 64

// Serve runs the batched-vs-unbatched serving comparison.
func (l *Lab) Serve() (*ServeResult, error) {
	det, err := l.System()
	if err != nil {
		return nil, err
	}
	analyzer, err := l.Analyzer()
	if err != nil {
		return nil, err
	}
	// A small pool of comment-heavy items: trending items carry hundreds
	// of comments, so scoring dominates transport, and 64 in-flight
	// clients over 8 items give the coalescer real duplication to
	// harvest. The pool takes the most-commented items of the universe so
	// no sales-filtered (near-free to score) item dilutes the workload.
	u := synth.Generate(synth.Config{
		Name: "serve-hot", Seed: 2300 + l.cfg.Seed,
		FraudEvidence: 8, Normal: 24, Shops: 4,
		NormalCommentsMin: 350, NormalCommentsMax: 500,
	})
	hot := append([]ecom.Item(nil), u.Dataset.Items...)
	sort.Slice(hot, func(i, j int) bool { return len(hot[i].Comments) > len(hot[j].Comments) })
	if len(hot) > 8 {
		hot = hot[:8]
	}
	// Merge each item's short reviews into long-form ones (runs of 8).
	// Trending items attract essay-length reviews, and the merge keeps a
	// request's decode cost proportional to text — not to the count of
	// comment records — so the benchmark weighs scoring, which batching
	// dedupes, over JSON field plumbing, which no dispatcher can avoid.
	const mergeRun = 8
	for i := range hot {
		src := hot[i].Comments
		merged := make([]ecom.Comment, 0, (len(src)+mergeRun-1)/mergeRun)
		for j := 0; j < len(src); j += mergeRun {
			c := src[j]
			var sb strings.Builder
			for k := j; k < j+mergeRun && k < len(src); k++ {
				sb.WriteString(src[k].Content)
			}
			c.Content = sb.String()
			merged = append(merged, c)
		}
		hot[i].Comments = merged
	}
	bodies := make([][]byte, len(hot))
	for i := range hot {
		b, err := json.Marshal(service.DetectRequest{Items: []ecom.Item{hot[i]}})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	const perClient = 16
	res := &ServeResult{}
	for _, mode := range []struct {
		name     string
		batching *dispatch.Options
	}{
		{"per-request scoring", nil},
		// MaxWait is sized to gather a full wave of concurrent clients
		// into one flush: with 64 sequential clients over 8 hot items,
		// each window then scores each distinct item once and the
		// coalescer serves everyone else for free.
		{"batched dispatcher", &dispatch.Options{
			MaxBatch: 64, MaxWait: 50 * time.Millisecond, MaxQueue: 8192,
		}},
	} {
		row, err := serveLoad(det, analyzer, l.cfg.Workers, mode.name, mode.batching, bodies, perClient)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if res.Rows[0].RequestsPerSec > 0 {
		res.Speedup = res.Rows[1].RequestsPerSec / res.Rows[0].RequestsPerSec
	}
	return res, nil
}

// serveLoad boots one service configuration and drives the concurrent
// workload against it, recording throughput and latency percentiles.
// Requests go straight into the handler (httptest.NewRecorder rather
// than a loopback socket): the benchmark isolates the serving
// pipeline's cost — decode, dispatch, scoring, encode — from kernel
// socket overhead, which is identical in both modes and would otherwise
// dilute the comparison.
func serveLoad(det *core.Detector, analyzer *core.Analyzer, workers int, name string, batching *dispatch.Options, bodies [][]byte, perClient int) (ServeRow, error) {
	srv := service.New(det, analyzer, service.Options{Workers: workers, Batching: batching})
	defer srv.Close()
	handler := srv.Handler()
	// The dispatcher's counters live on the shared default registry, so
	// only deltas across this load run are meaningful.
	batchesBefore := counterValue(handler, "cats_serve_batches_total")
	coalescedBefore := counterValue(handler, "cats_serve_coalesced_total")

	latencies := make([][]time.Duration, serveClients)
	sheds := make([]int, serveClients)
	errs := make([]error, serveClients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				body := bodies[(c*31+i)%len(bodies)]
				req := httptest.NewRequest(http.MethodPost, "/v1/detect", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				t0 := time.Now()
				handler.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					lat = append(lat, time.Since(t0))
				case http.StatusServiceUnavailable:
					sheds[c]++
				default:
					errs[c] = fmt.Errorf("%s: status %d", name, rec.Code)
					return
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeRow{}, err
		}
	}

	var all []time.Duration
	shed := 0
	for c := range latencies {
		all = append(all, latencies[c]...)
		shed += sheds[c]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := ServeRow{
		Mode: name, Clients: serveClients,
		Requests: serveClients * perClient, Shed: shed, Elapsed: elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		row.RequestsPerSec = float64(row.Requests) / s
	}
	row.ShedRate = float64(shed) / float64(row.Requests)
	if n := len(all); n > 0 {
		row.P50 = all[n/2]
		row.P99 = all[n*99/100]
	}
	if batching != nil {
		row.Batches = int64(counterValue(handler, "cats_serve_batches_total") - batchesBefore)
		row.Coalesced = int64(counterValue(handler, "cats_serve_coalesced_total") - coalescedBefore)
	}
	return row, nil
}

// counterValue reads one sample's value off the service's /metrics
// handler; absent metrics read as 0.
func counterValue(handler http.Handler, name string) float64 {
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var total float64
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		// Sum across label sets (the serve counters carry a tenant
		// label): "name{...} v" and bare "name v" both count.
		rest, ok := strings.CutPrefix(line, name)
		if !ok || (!strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{")) {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

// String prints the serving comparison table.
func (r *ServeResult) String() string {
	var b strings.Builder
	b.WriteString("Serving throughput — batched dispatcher vs per-request scoring (hot-item traffic)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s %2d clients, %4d requests in %8s = %7.0f req/s; p50 %s, p99 %s; %d shed (%.1f%%)",
			row.Mode, row.Clients, row.Requests, row.Elapsed.Round(time.Millisecond),
			row.RequestsPerSec, row.P50.Round(10*time.Microsecond), row.P99.Round(10*time.Microsecond),
			row.Shed, 100*row.ShedRate)
		if row.Batches > 0 {
			fmt.Fprintf(&b, "; %d fused batches, %d coalesced", row.Batches, row.Coalesced)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  speedup: %.2fx requests/s from coalescing + fused batches\n", r.Speedup)
	return b.String()
}
