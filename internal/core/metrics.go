package core

import (
	"strings"
	"sync"

	"repro/internal/obs"
)

// DefaultTenant is the tenant label applied to pipeline metrics when no
// tenant is named — the single-model deployments that predate the
// multi-tenant registry keep their metrics under it.
const DefaultTenant = "default"

// Pipeline instrumentation (DESIGN.md §10, §12). Every cats_pipeline_*
// family carries a trailing tenant label so a multi-tenant deployment
// (internal/registry) can tell one platform's traffic from another's.
// Handles are resolved once per tenant and cached, so the per-item cost
// in the detection loop stays an atomic add (counters) or two
// wall-clock reads plus atomic adds (spans). The stage taxonomy follows
// the fused pipeline of §6: "analyze" is the single
// tokenize→filter→features pass (segmentation and feature assembly are
// one stage by construction), "score" is the classifier.
var (
	pipelineItems = obs.Default.CounterVec("cats_pipeline_items_total",
		"Items through the two-stage detection pipeline, by outcome: scored, "+
			"filtered_sales (dropped by the stage-one sales cutoff before any "+
			"text analysis), filtered_signal (analyzed, then dropped for lacking "+
			"a positive word or 2-gram).", "outcome", "tenant")

	pipelineBatches = obs.Default.CounterVec("cats_pipeline_batches_total",
		"Detection batches dispatched (Detect/DetectContext/DetectStream chunks).",
		"tenant")
	pipelineBatchSize = obs.Default.HistogramVec("cats_pipeline_batch_size",
		"Items per detection batch.", obs.SizeBuckets, "tenant")

	pipelineStage = obs.Default.HistogramVec("cats_pipeline_stage_seconds",
		"Pipeline stage latency in seconds. analyze = the fused "+
			"tokenize+filter+features pass, observed per item; score = the "+
			"classifier, observed per scoring call (per batch for the flattened "+
			"GBT ensemble, per item otherwise).", obs.LatencyBuckets, "stage", "tenant")

	pipelineComments = obs.Default.CounterVec("cats_pipeline_comments_total",
		"Comments fed through the fused analysis pass.", "tenant")
)

// pipelineMetrics is one tenant's pre-resolved handle set: the detector
// stores one and updates it lock-free on the hot path.
type pipelineMetrics struct {
	itemsScored         *obs.Counter
	itemsFilteredSales  *obs.Counter
	itemsFilteredSignal *obs.Counter
	batches             *obs.Counter
	batchSize           *obs.Histogram
	stageAnalyze        *obs.Histogram
	stageScore          *obs.Histogram
	commentsAnalyzed    *obs.Counter
}

var (
	pipelineMetricsMu    sync.Mutex
	pipelineMetricsCache = map[string]*pipelineMetrics{}
)

// pipelineMetricsFor resolves (and caches) the handle set for one
// tenant label. Resolution takes the family locks; lookups after the
// first are a mutex-guarded map read, and detectors hold the returned
// struct so the detection loop itself never comes back here.
func pipelineMetricsFor(tenant string) *pipelineMetrics {
	if tenant == "" {
		tenant = DefaultTenant
	}
	pipelineMetricsMu.Lock()
	defer pipelineMetricsMu.Unlock()
	if m, ok := pipelineMetricsCache[tenant]; ok {
		return m
	}
	// The cache key and the label values live for the process; copy the
	// caller's string so a decode-arena alias (a tenant name lifted from
	// a columnar snapshot) is never pinned here.
	key := strings.Clone(tenant)
	m := resolvePipelineMetrics(key)
	pipelineMetricsCache[key] = m
	return m
}

// resolvePipelineMetrics takes the family locks once and resolves every
// per-tenant series handle. tenant must be a process-owned string: the
// families retain it as a label value.
func resolvePipelineMetrics(tenant string) *pipelineMetrics {
	return &pipelineMetrics{
		itemsScored:         pipelineItems.With("scored", tenant),
		itemsFilteredSales:  pipelineItems.With("filtered_sales", tenant),
		itemsFilteredSignal: pipelineItems.With("filtered_signal", tenant),
		batches:             pipelineBatches.With(tenant),
		batchSize:           pipelineBatchSize.With(tenant),
		stageAnalyze:        pipelineStage.With("analyze", tenant),
		stageScore:          pipelineStage.With("score", tenant),
		commentsAnalyzed:    pipelineComments.With(tenant),
	}
}
