package lexicon

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/word2vec"
)

// trainClusteredModel builds an embedding model over two disjoint
// co-occurrence clusters so expansion from a seed should recover its
// own cluster and avoid the other.
func trainClusteredModel(t *testing.T, a, b []string) *word2vec.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var corpus [][]string
	for i := 0; i < 800; i++ {
		c := a
		if i%2 == 1 {
			c = b
		}
		sent := make([]string, 8)
		for j := range sent {
			sent[j] = c[rng.Intn(len(c))]
		}
		corpus = append(corpus, sent)
	}
	m, err := word2vec.Train(corpus, word2vec.Config{Dim: 16, Epochs: 5, MinCount: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var (
	posCluster = []string{"好评", "很好", "不错", "满意", "喜欢", "推荐", "好用", "实惠"}
	negCluster = []string{"差评", "太差", "失望", "退货", "垃圾", "难用", "糟糕", "坑人"}
)

func TestExpandRecoversCluster(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	got, err := Expand(m, []string{"好评"}, Config{K: 5, MaxSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	set := NewSet(got)
	recovered := set.Overlap(posCluster)
	if recovered < 6 {
		t.Errorf("recovered %d/8 positive-cluster words: %v", recovered, got)
	}
	leaked := set.Overlap(negCluster)
	if leaked > 1 {
		t.Errorf("expansion leaked %d negative-cluster words: %v", leaked, got)
	}
}

func TestExpandRespectsMaxSize(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	got, err := Expand(m, []string{"好评"}, Config{K: 10, MaxSize: 3, MinSim: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 3 {
		t.Fatalf("len = %d, want <= 3", len(got))
	}
}

func TestExpandIncludesSeeds(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	got, err := Expand(m, []string{"好评", "满意"}, Config{K: 2, MaxSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, w := range got {
		found[w] = true
	}
	if !found["好评"] || !found["满意"] {
		t.Fatalf("seeds missing from expansion: %v", got)
	}
}

func TestExpandSkipsOOVSeeds(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	got, err := Expand(m, []string{"不在词表", "好评"}, Config{K: 3, MaxSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w == "不在词表" {
			t.Fatal("OOV seed leaked into lexicon")
		}
	}
}

func TestExpandAllSeedsOOV(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	if _, err := Expand(m, []string{"不在词表"}, Config{}); !errors.Is(err, ErrNoSeeds) {
		t.Fatalf("err = %v, want ErrNoSeeds", err)
	}
}

func TestExpandSortedDeterministic(t *testing.T) {
	m := trainClusteredModel(t, posCluster, negCluster)
	a, err := Expand(m, []string{"好评"}, Config{K: 5, MaxSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(a) {
		t.Error("expansion result not sorted")
	}
	b, _ := Expand(m, []string{"好评"}, Config{K: 5, MaxSize: 20})
	if len(a) != len(b) {
		t.Fatal("expansion not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("expansion not deterministic")
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet([]string{"b", "a", "a"})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains("a") || s.Contains("c") {
		t.Fatal("Contains wrong")
	}
	ws := s.Words()
	if len(ws) != 2 || ws[0] != "a" || ws[1] != "b" {
		t.Fatalf("Words = %v", ws)
	}
	if s.Overlap([]string{"a", "c", "b"}) != 2 {
		t.Fatal("Overlap wrong")
	}
}
