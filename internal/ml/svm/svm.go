// Package svm implements a linear support vector machine trained with
// the Pegasos primal sub-gradient solver (Shalev-Shwartz et al. 2011),
// one of the Table III baseline classifiers. Features are standardized
// internally; probabilities come from a Platt-style logistic squash of
// the margin.
//
// The paper observes SVM reaching very high precision but poor recall
// (0.99 / 0.62) — a linear margin with a conservative decision boundary
// on these features; the same qualitative shape emerges here.
package svm

import (
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Config holds the SVM hyperparameters. The zero value is usable.
type Config struct {
	// Lambda is the L2 regularization strength; <= 0 means 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data; <= 0 means 20.
	Epochs int
	// Seed seeds the sampling PRNG.
	Seed int64
	// ClassWeightPos scales the loss of positive examples; <= 0 means
	// 1. Raising it trades precision for recall.
	ClassWeightPos float64
	// NoStandardize skips internal feature scaling. Mixed-scale
	// features then drown the margin in the largest-magnitude columns,
	// which reproduces the conservative high-precision/low-recall
	// behavior of library SVMs run on raw features (the paper's
	// Table III SVM row: P=0.99, R=0.62).
	NoStandardize bool
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.ClassWeightPos <= 0 {
		c.ClassWeightPos = 1
	}
	return c
}

// Classifier is a fitted linear SVM.
type Classifier struct {
	cfg   Config
	w     []float64
	b     float64
	scale *ml.Standardizer
}

// New returns an untrained SVM.
func New(cfg Config) *Classifier { return &Classifier{cfg: cfg.withDefaults()} }

// Fit trains with Pegasos: at step t, sample one example, step size
// 1/(λt), sub-gradient of the hinge loss plus L2 shrinkage.
func (c *Classifier) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if c.cfg.NoStandardize {
		c.scale = &ml.Standardizer{} // identity transform
	} else {
		c.scale = ml.FitStandardizer(ds.X)
	}
	X := c.scale.TransformAll(ds.X)
	n := len(X)
	nf := len(X[0])
	c.w = make([]float64, nf)
	c.b = 0
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	t := 1
	steps := c.cfg.Epochs * n
	for s := 0; s < steps; s++ {
		i := rng.Intn(n)
		y := float64(2*ds.Y[i] - 1) // {-1, +1}
		eta := 1 / (c.cfg.Lambda * float64(t))
		margin := y * (dot(c.w, X[i]) + c.b)
		// L2 shrink.
		shrink := 1 - eta*c.cfg.Lambda
		if shrink < 0 {
			shrink = 0
		}
		for j := range c.w {
			c.w[j] *= shrink
		}
		if margin < 1 {
			cw := 1.0
			if y > 0 {
				cw = c.cfg.ClassWeightPos
			}
			for j := range c.w {
				c.w[j] += eta * cw * y * X[i][j]
			}
			c.b += eta * cw * y
		}
		t++
	}
	return nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Margin returns the signed distance-proportional score w·x + b.
func (c *Classifier) Margin(x []float64) float64 {
	if c.w == nil {
		return 0
	}
	return dot(c.w, c.scale.Transform(x)) + c.b
}

// PredictProba squashes the margin through a logistic; calibrated only
// in rank order, which is all the pipeline needs.
func (c *Classifier) PredictProba(x []float64) float64 {
	return 1 / (1 + math.Exp(-c.Margin(x)))
}

// Predict returns 1 when the margin is non-negative.
func (c *Classifier) Predict(x []float64) int {
	if c.Margin(x) >= 0 {
		return 1
	}
	return 0
}

// Weights returns a copy of the fitted weight vector (standardized
// feature space) and the bias.
func (c *Classifier) Weights() ([]float64, float64) {
	return append([]float64(nil), c.w...), c.b
}
