//go:build !race

package tokenize

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count tests skip under it (instrumentation
// allocates).
const raceEnabled = false
