package synth

import (
	"strings"
	"testing"

	"repro/internal/ecom"
	"repro/internal/stats"
)

func smallConfig() Config {
	return Config{
		Name: "small", Platform: "t", Seed: 1,
		FraudEvidence: 80, FraudManual: 20, Normal: 150, Shops: 10,
	}
}

func TestGenerateCounts(t *testing.T) {
	u := Generate(smallConfig())
	s := u.Dataset.Stats()
	if s.EvidenceFraud != 80 || s.ManualFraud != 20 || s.NormalItems != 150 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Comments == 0 {
		t.Fatal("no comments generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(smallConfig()), Generate(smallConfig())
	if len(a.Dataset.Items) != len(b.Dataset.Items) {
		t.Fatal("item counts differ")
	}
	for i := range a.Dataset.Items {
		ia, ib := a.Dataset.Items[i], b.Dataset.Items[i]
		if ia.ID != ib.ID || ia.Label != ib.Label || len(ia.Comments) != len(ib.Comments) {
			t.Fatalf("item %d differs between identical configs", i)
		}
		if len(ia.Comments) > 0 && ia.Comments[0].Content != ib.Comments[0].Content {
			t.Fatalf("comment content differs at item %d", i)
		}
	}
}

func TestUniqueItemIDs(t *testing.T) {
	u := Generate(smallConfig())
	seen := map[string]bool{}
	for i := range u.Dataset.Items {
		id := u.Dataset.Items[i].ID
		if seen[id] {
			t.Fatalf("duplicate item id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "t-i") {
			t.Fatalf("item id %q missing platform prefix", id)
		}
	}
}

func TestScale(t *testing.T) {
	cfg := D1Config().Scale(0.001)
	if cfg.FraudEvidence != 17 || cfg.FraudManual != 2 {
		t.Errorf("scaled fraud counts = %d/%d", cfg.FraudEvidence, cfg.FraudManual)
	}
	if cfg.Normal != 1461 {
		t.Errorf("scaled normal = %d", cfg.Normal)
	}
	// Zero stays zero; tiny nonzero clamps to 1.
	e := EPlatformConfig().Scale(1e-9)
	if e.FraudManual != 0 {
		t.Error("zero class should stay zero")
	}
	if e.FraudEvidence != 1 {
		t.Error("nonzero class should clamp to 1")
	}
}

func TestRiskyUsersLowExpValue(t *testing.T) {
	u := Generate(smallConfig())
	var riskyVals, organicVals []float64
	for _, usr := range u.Users {
		if u.RiskyUserIDs[usr.ID] {
			riskyVals = append(riskyVals, float64(usr.ExpValue))
		} else {
			organicVals = append(organicVals, float64(usr.ExpValue))
		}
	}
	if len(riskyVals) == 0 || len(organicVals) == 0 {
		t.Fatal("user pools empty")
	}
	rs, os := stats.Summarize(riskyVals), stats.Summarize(organicVals)
	if rs.Median >= os.Median {
		t.Fatalf("risky median expValue %v >= organic %v", rs.Median, os.Median)
	}
	// Floor respected.
	if rs.Min < 100 || os.Min < 100 {
		t.Fatal("expValue below floor of 100")
	}
	// ~25% of risky users at the floor (≈15% of unique fraud buyers
	// after organic dilution, Fig 11).
	atFloor := stats.FractionEqual(riskyVals, 100)
	if atFloor < 0.12 || atFloor > 0.40 {
		t.Errorf("risky users at floor = %.2f, want ≈0.25", atFloor)
	}
}

func TestFraudBuyersLessReliable(t *testing.T) {
	u := Generate(Config{
		Name: "buyers", Seed: 3,
		FraudEvidence: 150, Normal: 150, Shops: 10,
	})
	var fraudBuyers, normalBuyers []float64
	for i := range u.Dataset.Items {
		it := &u.Dataset.Items[i]
		for j := range it.Comments {
			v := float64(it.Comments[j].ExpVal)
			if it.Label.IsFraud() {
				fraudBuyers = append(fraudBuyers, v)
			} else {
				normalBuyers = append(normalBuyers, v)
			}
		}
	}
	fb := stats.FractionBelow(fraudBuyers, 2000)
	nb := stats.FractionBelow(normalBuyers, 2000)
	if fb <= nb {
		t.Fatalf("fraud buyers below 2000: %.2f <= normal %.2f", fb, nb)
	}
	if fb < 0.3 {
		t.Errorf("fraud buyers below 2000 = %.2f, want ≈0.45 (Fig 11 shape)", fb)
	}
}

func TestClientDistributions(t *testing.T) {
	u := Generate(Config{
		Name: "clients", Seed: 4,
		FraudEvidence: 200, Normal: 200, Shops: 10,
	})
	count := func(fraud bool) map[ecom.Client]int {
		m := map[ecom.Client]int{}
		for i := range u.Dataset.Items {
			it := &u.Dataset.Items[i]
			if it.Label.IsFraud() != fraud {
				continue
			}
			for j := range it.Comments {
				m[it.Comments[j].Client]++
			}
		}
		return m
	}
	fc, nc := count(true), count(false)
	// Fig 12: fraud orders dominated by web, normal by Android.
	if fc[ecom.ClientWeb] <= fc[ecom.ClientAndroid] {
		t.Errorf("fraud: web %d <= android %d", fc[ecom.ClientWeb], fc[ecom.ClientAndroid])
	}
	if nc[ecom.ClientAndroid] <= nc[ecom.ClientWeb] {
		t.Errorf("normal: android %d <= web %d", nc[ecom.ClientAndroid], nc[ecom.ClientWeb])
	}
}

func TestCollusionRings(t *testing.T) {
	u := Generate(Config{
		Name: "rings", Seed: 5,
		FraudEvidence: 200, Normal: 50, Shops: 5, RiskyUsers: 60,
	})
	// Count fraud items per risky user; ring reuse should give many
	// users multiple purchases.
	perUser := map[string]int{}
	for i := range u.Dataset.Items {
		it := &u.Dataset.Items[i]
		if !it.Label.IsFraud() {
			continue
		}
		seen := map[string]bool{}
		for j := range it.Comments {
			uid := it.Comments[j].UserID
			if u.RiskyUserIDs[uid] && !seen[uid] {
				seen[uid] = true
				perUser[uid]++
			}
		}
	}
	multi := 0
	for _, n := range perUser {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no risky user purchased more than one fraud item; rings not working")
	}
}

func TestLowVolumeShare(t *testing.T) {
	u := Generate(Config{
		Name: "lowvol", Seed: 6,
		FraudEvidence: 10, Normal: 400, Shops: 5, LowVolumeShare: 0.2,
	})
	low := 0
	for i := range u.Dataset.Items {
		it := &u.Dataset.Items[i]
		if !it.Label.IsFraud() && it.SalesVolume < 5 {
			low++
		}
	}
	frac := float64(low) / 400
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("low-volume share = %.2f, want ≈0.2", frac)
	}
}

func TestPaperConfigs(t *testing.T) {
	d0 := D0Config()
	if d0.FraudEvidence+d0.FraudManual != 14000 || d0.Normal != 20000 {
		t.Errorf("D0Config item counts wrong: %+v", d0)
	}
	d1 := D1Config()
	if d1.FraudEvidence != 16782 || d1.FraudManual != 1900 || d1.Normal != 1461452 {
		t.Errorf("D1Config counts wrong: %+v", d1)
	}
	if d1.Shops != 15992 {
		t.Errorf("D1 shops = %d, want 15992", d1.Shops)
	}
	ep := EPlatformConfig()
	if ep.FraudEvidence+ep.Normal != 4500000 {
		t.Errorf("E-platform total = %d, want 4.5M", ep.FraudEvidence+ep.Normal)
	}
	if ep.StyleJitter == 0 {
		t.Error("E-platform should have nonzero style jitter")
	}
}

func TestPolarCorpus(t *testing.T) {
	texts, labels := PolarCorpus(100, 1)
	if len(texts) != 100 || len(labels) != 100 {
		t.Fatal("wrong corpus size")
	}
	pos := 0
	for _, l := range labels {
		pos += l
	}
	if pos != 50 {
		t.Fatalf("positive labels = %d, want 50", pos)
	}
}

func TestTrainingCorpus(t *testing.T) {
	c := TrainingCorpus(200, 2)
	if len(c) != 200 {
		t.Fatalf("corpus size = %d", len(c))
	}
	for _, s := range c {
		if s == "" {
			t.Fatal("empty comment in corpus")
		}
	}
}

func TestD0CommentVolume(t *testing.T) {
	// Scaled D0 should land near the paper's ≈14 comments/item.
	u := Generate(D0Config().Scale(0.02))
	s := u.Dataset.Stats()
	perItem := float64(s.Comments) / float64(s.FraudItems+s.NormalItems)
	if perItem < 10 || perItem > 18 {
		t.Errorf("comments/item = %.1f, want ≈14 (Table IV shape)", perItem)
	}
}
