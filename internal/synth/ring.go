package synth

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ecom"
	"repro/internal/textgen"
)

// RingAttack is the seeded colluding-ring attack script: a universe
// whose organized-fraud structure is exactly known, so cluster
// precision/recall is measurable instead of eyeballed. Unlike
// Generate's probabilistic ring sampling, the attack is exhaustive and
// clean-room:
//
//   - every ring member comments every one of its ring's fraud items,
//     so each in-ring user pair shares ItemsPerRing fraud items;
//   - rings never share users or items, so no cross-ring pair shares
//     anything;
//   - organic dilution buyers on fraud items are drawn WITHOUT
//     replacement — each appears on at most one fraud item and so can
//     never reach a 2-shared-items pair with anyone.
//
// Under the paper's thresholds (2+ shared fraud items) the co-purchase
// components of the result are therefore exactly the planted rings: no
// split, no merge. The recovery test asserts that 1:1 mapping.

// RingConfig sizes a planted-ring universe.
type RingConfig struct {
	// Name is the dataset name; empty means "ring-attack".
	Name string
	// Platform prefixes ids; empty means "ring".
	Platform string
	// Seed fixes the RNG; the same config always yields the same
	// universe.
	Seed int64
	// Rings is the number of planted rings; <= 0 means 12.
	Rings int
	// RingSize is the users per ring; <= 0 means 8.
	RingSize int
	// ItemsPerRing is the fraud items each ring promotes; <= 0 means 6
	// (must be >= 2 for in-ring pairs to qualify).
	ItemsPerRing int
	// DilutionPerItem is how many one-shot organic buyers pad each
	// fraud item; < 0 means 0, default 5.
	DilutionPerItem int
	// NormalItems is the count of organic background items; < 0 means
	// 0, default 40.
	NormalItems int
}

func (c RingConfig) withDefaults() RingConfig {
	if c.Name == "" {
		c.Name = "ring-attack"
	}
	if c.Platform == "" {
		c.Platform = "ring"
	}
	if c.Rings <= 0 {
		c.Rings = 12
	}
	if c.RingSize <= 0 {
		c.RingSize = 8
	}
	if c.ItemsPerRing <= 0 {
		c.ItemsPerRing = 6
	}
	if c.DilutionPerItem == 0 {
		c.DilutionPerItem = 5
	}
	if c.DilutionPerItem < 0 {
		c.DilutionPerItem = 0
	}
	if c.NormalItems == 0 {
		c.NormalItems = 40
	}
	if c.NormalItems < 0 {
		c.NormalItems = 0
	}
	return c
}

// RingUniverse is a planted-ring dataset with its ground truth.
type RingUniverse struct {
	Config  RingConfig
	Dataset ecom.Dataset
	// Rings lists each planted ring's member user ids.
	Rings [][]string
	// UserRing maps a ring member's user id to its ring index.
	UserRing map[string]int
	// ItemRing maps each fraud item's id to the ring that promoted it.
	ItemRing map[string]int
}

// RingAttack builds a planted-ring universe. Deterministic per config.
func RingAttack(cfg RingConfig) *RingUniverse {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := textgen.NewGenerator(textgen.NewBank(), rng)

	u := &RingUniverse{
		Config:   cfg,
		UserRing: map[string]int{},
		ItemRing: map[string]int{},
	}
	u.Dataset.Name = cfg.Name

	// Ring members: low-reputation hired accounts.
	members := make([][]ecom.User, cfg.Rings)
	for r := 0; r < cfg.Rings; r++ {
		ids := make([]string, cfg.RingSize)
		members[r] = make([]ecom.User, cfg.RingSize)
		for k := 0; k < cfg.RingSize; k++ {
			id := fmt.Sprintf("%s-r%03d-m%03d", cfg.Platform, r, k)
			members[r][k] = ecom.User{ID: id, Nickname: gen.Nickname(), ExpValue: riskyExpValue(rng)}
			ids[k] = id
			u.UserRing[id] = r
		}
		u.Rings = append(u.Rings, ids)
	}

	// One-shot dilution buyers, consumed without replacement.
	dilutionSeq := 0
	nextDilution := func() ecom.User {
		id := fmt.Sprintf("%s-d%07d", cfg.Platform, dilutionSeq)
		dilutionSeq++
		return ecom.User{ID: id, Nickname: gen.Nickname(), ExpValue: organicExpValue(rng)}
	}

	// Background organic pool for normal items (free to repeat: normal
	// items are never mined for pairs).
	organic := make([]ecom.User, 64)
	for i := range organic {
		organic[i] = ecom.User{
			ID:       fmt.Sprintf("%s-u%07d", cfg.Platform, i),
			Nickname: gen.Nickname(),
			ExpValue: organicExpValue(rng),
		}
	}

	base := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	addComment := func(item *ecom.Item, user ecom.User, style textgen.Style, client ecom.Client) {
		item.Comments = append(item.Comments, ecom.Comment{
			ID:      fmt.Sprintf("%s-c%04d", item.ID, len(item.Comments)),
			ItemID:  item.ID,
			Content: gen.Comment(style),
			UserID:  user.ID,
			Nick:    user.Nickname,
			ExpVal:  user.ExpValue,
			Client:  client,
			Date:    base.Add(time.Duration(rng.Intn(14*24)) * time.Hour),
		})
	}

	itemSeq := 0
	newItem := func(label ecom.Label) ecom.Item {
		item := ecom.Item{
			ID:         fmt.Sprintf("%s-i%09d", cfg.Platform, itemSeq),
			ShopID:     fmt.Sprintf("%s-s%05d", cfg.Platform, itemSeq%7),
			Name:       gen.ItemName(),
			Category:   ecom.Categories[rng.Intn(len(ecom.Categories))],
			PriceCents: 500 + int64(rng.Intn(200000)),
			Label:      label,
		}
		itemSeq++
		return item
	}

	// Fraud items: every ring member comments every ring item, padded
	// by one-shot organic buyers.
	fraudStyle := textgen.FraudStyle()
	normalStyle := textgen.NormalStyle()
	for r := 0; r < cfg.Rings; r++ {
		for m := 0; m < cfg.ItemsPerRing; m++ {
			item := newItem(ecom.FraudEvidence)
			u.ItemRing[item.ID] = r
			for k := range members[r] {
				addComment(&item, members[r][k], fraudStyle, fraudClient(rng))
			}
			for d := 0; d < cfg.DilutionPerItem; d++ {
				addComment(&item, nextDilution(), normalStyle, organicClient(rng))
			}
			item.SalesVolume = len(item.Comments) + rng.Intn(2*len(item.Comments)+1)
			u.Dataset.Items = append(u.Dataset.Items, item)
		}
	}

	// Organic background: normal items with repeat organic buyers.
	for i := 0; i < cfg.NormalItems; i++ {
		item := newItem(ecom.Normal)
		n := 3 + rng.Intn(6)
		for j := 0; j < n; j++ {
			addComment(&item, organic[rng.Intn(len(organic))], normalStyle, organicClient(rng))
		}
		item.SalesVolume = n + rng.Intn(10*n+1)
		u.Dataset.Items = append(u.Dataset.Items, item)
	}

	// Shuffle so label order carries no information, like Generate.
	rng.Shuffle(len(u.Dataset.Items), func(i, j int) {
		u.Dataset.Items[i], u.Dataset.Items[j] = u.Dataset.Items[j], u.Dataset.Items[i]
	})
	return u
}
