package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/ecom"
	"repro/internal/graph"
	"repro/internal/synth"
	"repro/internal/textgen"
)

// clusterTestService is newTestService plus a kept detector handle, so
// the test can install and clear a graph scorer out-of-band.
func clusterTestService(t *testing.T) (*core.Detector, *httptest.Server) {
	t.Helper()
	bank := textgen.NewBank()
	texts, labels := synth.PolarCorpus(800, 91)
	analyzer, err := core.OracleAnalyzer(bank, texts, labels)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(analyzer, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	train := synth.Generate(synth.Config{
		Name: "clu-train", Seed: 92, FraudEvidence: 80, Normal: 120, Shops: 6,
	})
	if err := det.Train(&train.Dataset, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(det, analyzer, Options{}).Handler())
	t.Cleanup(ts.Close)
	return det, ts
}

func getClusters(t *testing.T, url string) (*http.Response, ClustersResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out ClustersResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestClustersEndpoint(t *testing.T) {
	det, ts := clusterTestService(t)

	// No scorer installed: the report does not exist yet.
	if resp, _ := getClusters(t, ts.URL+"/v1/clusters"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-scorer status = %d, want 404", resp.StatusCode)
	}

	u := synth.RingAttack(synth.RingConfig{Seed: 5, Rings: 4, NormalItems: 10})
	g := graph.FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, graph.Config{})
	det.SetGraphScorer(g.Cluster().Scorer(graph.ScorerConfig{}))

	resp, out := getClusters(t, ts.URL+"/v1/clusters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Report == nil || len(out.Report.Clusters) != u.Config.Rings {
		t.Fatalf("report has %d clusters, want %d rings", len(out.Report.Clusters), u.Config.Rings)
	}
	if out.Truncated {
		t.Error("untruncated report marked truncated")
	}

	// limit trims the cluster list and flags it.
	resp, out = getClusters(t, ts.URL+"/v1/clusters?limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit status = %d", resp.StatusCode)
	}
	if len(out.Report.Clusters) != 1 || !out.Truncated {
		t.Fatalf("limit=1 returned %d clusters (truncated=%v)", len(out.Report.Clusters), out.Truncated)
	}
	// The full report must survive truncation of a previous response.
	if _, again := getClusters(t, ts.URL+"/v1/clusters"); len(again.Report.Clusters) != u.Config.Rings {
		t.Fatal("truncation leaked into the shared report")
	}

	if resp, _ := getClusters(t, ts.URL+"/v1/clusters?limit=-3"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

// TestDetectCarriesClusterEvidence checks that /v1/detect surfaces the
// cluster DTO on boosted detections once a scorer is installed.
func TestDetectCarriesClusterEvidence(t *testing.T) {
	det, ts := clusterTestService(t)
	u := synth.RingAttack(synth.RingConfig{Seed: 7, Rings: 3, NormalItems: 8})
	g := graph.FromDataset(&u.Dataset, func(it *ecom.Item) bool { return it.Label.IsFraud() }, graph.Config{})
	det.SetGraphScorer(g.Cluster().Scorer(graph.ScorerConfig{}))

	body, err := json.Marshal(DetectRequest{Items: u.Dataset.Items})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postDetect(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var withCluster, without int
	for _, d := range out.Detections {
		if _, inRing := u.ItemRing[d.ItemID]; inRing && d.Cluster != nil {
			withCluster++
			if d.Cluster.Size != u.Config.RingSize || d.Cluster.Boost <= 0 {
				t.Fatalf("item %s: cluster DTO %+v inconsistent with ring", d.ItemID, *d.Cluster)
			}
		} else if !inRing {
			without++
			if d.Cluster != nil {
				t.Fatalf("item %s: unclustered item carries cluster DTO", d.ItemID)
			}
		}
	}
	if withCluster == 0 || without == 0 {
		t.Fatalf("degenerate split: %d with cluster, %d without", withCluster, without)
	}
}
