package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/ml/mltest"
	"repro/internal/ml/tree"
)

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(0, 1)
	for i := 0; i < 4; i++ {
		c.Add(0, 0)
	}
	c.Add(1, 0)
	c.Add(1, 0)
	if c.Total() != 10 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Precision(); got != 0.75 {
		t.Errorf("Precision = %v, want 0.75", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Errorf("Recall = %v, want 0.6", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.7 {
		t.Errorf("Accuracy = %v, want 0.7", got)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion should yield all-zero metrics")
	}
}

func TestStratifiedFoldsPreserveBalance(t *testing.T) {
	ds := mltest.Gaussians(1000, 2, 1, 1) // 50/50 classes
	rng := rand.New(rand.NewSource(2))
	folds, err := StratifiedFolds(ds, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		pos := 0
		for _, i := range fold {
			if seen[i] {
				t.Fatal("row appears in two folds")
			}
			seen[i] = true
			pos += ds.Y[i]
		}
		rate := float64(pos) / float64(len(fold))
		if rate < 0.45 || rate > 0.55 {
			t.Errorf("fold positive rate %v, want ≈0.5", rate)
		}
	}
	if len(seen) != ds.Len() {
		t.Fatalf("folds cover %d rows, want %d", len(seen), ds.Len())
	}
}

func TestStratifiedFoldsErrors(t *testing.T) {
	ds := mltest.Gaussians(10, 1, 1, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := StratifiedFolds(ds, 1, rng); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := StratifiedFolds(ds, 11, rng); err == nil {
		t.Error("k>n should error")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := mltest.Gaussians(500, 3, 3, 3)
	rng := rand.New(rand.NewSource(4))
	perFold, pooled, err := CrossValidate(func() ml.Classifier {
		return tree.New(tree.Config{MaxDepth: 4})
	}, ds, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(perFold) != 5 {
		t.Fatalf("got %d folds", len(perFold))
	}
	if pooled.Accuracy < 0.9 {
		t.Fatalf("pooled CV accuracy %.3f on separable data", pooled.Accuracy)
	}
	if pooled.Confusion.Total() != ds.Len() {
		t.Fatalf("pooled predictions %d, want %d", pooled.Confusion.Total(), ds.Len())
	}
}

func TestSplitStratified(t *testing.T) {
	ds := mltest.Gaussians(1000, 2, 1, 5)
	rng := rand.New(rand.NewSource(6))
	train, test, err := Split(ds, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := train.Len() + test.Len(); got != ds.Len() {
		t.Fatalf("split loses rows: %d != %d", got, ds.Len())
	}
	if r := test.PositiveRate(); r < 0.45 || r > 0.55 {
		t.Errorf("test positive rate %v", r)
	}
	if test.Len() < 150 || test.Len() > 250 {
		t.Errorf("test size %d, want ≈200", test.Len())
	}
	if _, _, err := Split(ds, 0, rng); err == nil {
		t.Error("testFrac=0 should error")
	}
	if _, _, err := Split(ds, 1, rng); err == nil {
		t.Error("testFrac=1 should error")
	}
}

func TestEvaluate(t *testing.T) {
	ds := mltest.Gaussians(300, 2, 4, 7)
	clf := tree.New(tree.Config{MaxDepth: 4})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	m := Evaluate(clf, ds)
	if m.Accuracy < 0.95 {
		t.Fatalf("Evaluate accuracy %.3f", m.Accuracy)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

// Property: for any confusion counts, F1 lies between 0 and 1, and
// precision/recall bound it: min(P,R) <= F1-ish bounds hold (F1 is the
// harmonic mean so F1 <= min not required; but F1 <= max(P,R)).
func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		f1 := c.F1()
		p, r := c.Precision(), c.Recall()
		maxPR := math.Max(p, r)
		return f1 >= 0 && f1 <= 1 && f1 <= maxPR+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
