package colfmt

import (
	"encoding/binary"
	"math"
)

// Enc builds a block payload. Scalars append individually; the column
// helpers prefix a count so the matching Dec helper can bound its
// allocation before reading a single element.
type Enc struct {
	b []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the encoded size so far.
func (e *Enc) Len() int { return len(e.b) }

// Reset empties the encoder, retaining capacity.
func (e *Enc) Reset() { e.b = e.b[:0] }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a zigzag-coded signed varint.
func (e *Enc) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// U32 appends a fixed 4-byte little-endian value (string-arena offsets).
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// F64 appends IEEE 754 bits, 8 bytes little-endian: floats round-trip
// exactly, which the bit-identical-detections contract depends on.
func (e *Enc) F64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

// Byte appends one byte.
func (e *Enc) Byte(v byte) { e.b = append(e.b, v) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Raw appends bytes verbatim (the caller encodes its own length).
func (e *Enc) Raw(b []byte) { e.b = append(e.b, b...) }

// Str appends a length-prefixed string — for scalar metadata, not
// columns; column strings belong in the arena.
func (e *Enc) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// IntCol appends a varint-packed signed column: count, then zigzag
// varints.
func (e *Enc) IntCol(vs []int64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Varint(v)
	}
}

// IntsCol is IntCol over machine ints.
func (e *Enc) IntsCol(vs []int) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Varint(int64(v))
	}
}

// F64Col appends a float column: count, then fixed 8-byte values.
func (e *Enc) F64Col(vs []float64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// ByteCol appends a byte column: count, then raw bytes (labels,
// clients, leaf flags).
func (e *Enc) ByteCol(vs []byte) {
	e.Uvarint(uint64(len(vs)))
	e.b = append(e.b, vs...)
}

// Arena accumulates the shared string bytes one block group's string
// columns point into.
type Arena struct {
	b []byte
}

// Len returns the arena size so far; it only grows, so a column's
// offsets are stable once written.
func (a *Arena) Len() int { return len(a.b) }

// Bytes returns the arena contents, the payload of the arena block.
func (a *Arena) Bytes() []byte { return a.b }

// Reset empties the arena, retaining capacity.
func (a *Arena) Reset() { a.b = a.b[:0] }

// add appends s and returns the end offset.
func (a *Arena) add(s string) uint32 {
	a.b = append(a.b, s...)
	return uint32(len(a.b))
}

// StringCol appends a string column to e, storing the strings
// contiguously in a: count, base offset, then one uint32 end offset per
// string. Decoding slices [prev:end] out of the arena — zero copies per
// value.
func (e *Enc) StringCol(a *Arena, ss []string) {
	e.Uvarint(uint64(len(ss)))
	e.U32(uint32(a.Len()))
	for _, s := range ss {
		e.U32(a.add(s))
	}
}

// StringColFunc is StringCol for n strings produced by at(i), sparing
// the caller a materialized []string.
func (e *Enc) StringColFunc(a *Arena, n int, at func(int) string) {
	e.Uvarint(uint64(n))
	e.U32(uint32(a.Len()))
	for i := 0; i < n; i++ {
		e.U32(a.add(at(i)))
	}
}
