// Package registry is the serving stack's multi-tenant model registry:
// named tenants, each holding an atomically-swappable (detector,
// analyzer, version) handle, with zero-downtime reload.
//
// The paper's central claim is cross-platform detection — pre-train on
// Taobao, deploy on a new E-platform (§VI) — which in production means
// one process serving several platforms' models at once, each retrained
// and rolled out on its own schedule. The registry is that substrate:
//
//   - Load → validate → CAS. A candidate snapshot is materialized into
//     a detector, scored against the tenant's golden probe set, and
//     only on a clean verdict does a compare-and-swap publish it. A bad
//     snapshot — truncated file, wrong version, a retrain that lost the
//     plot — never goes live; the tenant keeps serving its old model
//     and the caller gets a diagnosable error.
//   - In-flight requests finish on the model they started with. A
//     request Acquires the tenant's current handle (refcounted) and
//     holds it end to end; a swap retires the old handle, whose
//     dispatcher drains and closes only after its last holder releases.
//     No request ever observes half of one model and half of another,
//     and none is dropped by a reload.
//   - Per-tenant serving isolation. Each handle owns its own batching
//     dispatcher (internal/dispatch) with its own admission queue and
//     optional batch-concurrency quota, and every cats_pipeline_* /
//     cats_serve_* metric the model emits carries the tenant label —
//     one hot tenant saturates its own queue, not its neighbors'.
//
// internal/service routes requests here per tenant; cmd/catsserve loads
// a directory of snapshots into it and re-scans on SIGHUP or an
// authenticated /admin/reload.
package registry

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/ecom"
)

// Options tunes the registry.
type Options struct {
	// Batching, when non-nil, is the dispatcher template every tenant's
	// handle is served through: each loaded model gets its own
	// dispatcher built from these settings with Tenant set to the
	// tenant's name. Nil serves each request with its own scoring
	// batch.
	Batching *dispatch.Options
	// Workers bounds probe-validation parallelism; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Probes is the default golden probe set a candidate model must
	// pass before a swap publishes it; per-tenant sets override it via
	// SetProbes. An empty set admits any decodable, trained model.
	Probes ProbeSet
}

// Probe is one golden-set item a candidate model must score.
type Probe struct {
	Item ecom.Item `json:"item"`
	// WantFraud, when non-nil, is the verdict the candidate must
	// reproduce; nil probes only require a clean scoring pass.
	WantFraud *bool `json:"want_fraud,omitempty"`
}

// ProbeSet is a golden probe collection plus its acceptance bar.
type ProbeSet struct {
	Probes []Probe
	// MaxMismatches is how many WantFraud expectations a candidate may
	// miss and still go live — headroom for legitimate drift between
	// retrains. 0 means every expectation must hold.
	MaxMismatches int
}

// Model is one immutable loaded model: the unit a tenant swaps.
type Model struct {
	Detector *core.Detector
	Analyzer *core.Analyzer
	// Version identifies the snapshot bytes (source base name plus a
	// content hash for file loads; caller-supplied otherwise).
	Version string
	// Generation is the tenant's monotonic load counter; it is what
	// cats_registry_model_version reports.
	Generation uint64
}

// Handle is an acquired lease on a tenant's current model. Every
// request holds exactly one handle from admission to response, so the
// whole request is served by one coherent (detector, analyzer) pair
// even when a reload swaps the tenant mid-flight. Callers must Release
// exactly once.
type Handle struct {
	Model
	disp    *dispatch.Dispatcher // nil when batching is off
	refs    atomic.Int64
	retired atomic.Bool
}

// Dispatcher returns the handle's batching dispatcher, or nil when the
// registry was built without batching.
func (h *Handle) Dispatcher() *dispatch.Dispatcher { return h.disp }

// Release returns the lease. refs counts holders only — publication
// itself keeps the handle alive — so when the handle has been retired
// by a swap and this was its last holder, the dispatcher drains and
// closes: the deferred half of zero-downtime reload. A Release beyond
// the holder count is refused: the CAS loop never takes the count
// below zero, so a buggy double-Release cannot underflow the refcount
// or close a handle that is still published or still held.
func (h *Handle) Release() {
	for {
		n := h.refs.Load()
		if n <= 0 {
			return // already fully released: refuse the underflow
		}
		if h.refs.CompareAndSwap(n, n-1) {
			if n == 1 && h.retired.Load() {
				h.close()
			}
			return
		}
	}
}

// close shuts the handle's dispatcher down. Idempotent: dispatch.Close
// is safe to call more than once, and the acquire/release protocol can
// reach here twice only through already-idempotent paths.
func (h *Handle) close() {
	if h.disp != nil {
		h.disp.Close()
	}
}

// retire marks the handle replaced. Holders still finish on it; the
// last Release closes it, or retire does when none remain. The two
// sides can race to observe (retired, refs==0) — close is idempotent,
// so the overlap is harmless.
func (h *Handle) retire() {
	h.retired.Store(true)
	if h.refs.Load() == 0 {
		h.close()
	}
}

// Tenant is one named model slot.
type Tenant struct {
	name string
	reg  *Registry
	m    *tenantMetrics

	// cur is the published handle; Acquire spins on load-ref-recheck,
	// Load swaps it with CAS under reloadMu.
	cur atomic.Pointer[Handle]

	// reloadMu serializes swaps (validation runs outside it), making
	// generation order identical to publication order.
	reloadMu sync.Mutex
	gen      atomic.Uint64

	probeMu sync.Mutex
	probes  ProbeSet

	sourceMu sync.Mutex
	source   string // snapshot path for Reload; set by LoadFile
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Acquire leases the tenant's current model, or nil when none has been
// loaded yet. The lock-free load→ref→recheck loop closes the race with
// a concurrent swap: if the pointer moved while we were acquiring, the
// reference is handed back (possibly completing the old handle's
// retirement) and the new pointer is taken instead.
func (t *Tenant) Acquire() *Handle {
	for {
		h := t.cur.Load()
		if h == nil {
			return nil
		}
		h.refs.Add(1)
		if t.cur.Load() == h {
			// Still published, so not yet retired: retire() happens
			// only after a swap removes h from cur.
			return h
		}
		h.Release()
	}
}

// Version reports the tenant's live model version and generation;
// ok is false when nothing is loaded.
func (t *Tenant) Version() (version string, generation uint64, ok bool) {
	h := t.cur.Load()
	if h == nil {
		return "", 0, false
	}
	return h.Model.Version, h.Model.Generation, true
}

// Source reports the snapshot path Reload re-reads, if any.
func (t *Tenant) Source() string {
	t.sourceMu.Lock()
	defer t.sourceMu.Unlock()
	return t.source
}

func (t *Tenant) setSource(path string) {
	t.sourceMu.Lock()
	t.source = path
	t.sourceMu.Unlock()
}

func (t *Tenant) probeSet() ProbeSet {
	t.probeMu.Lock()
	defer t.probeMu.Unlock()
	return t.probes
}

// Registry holds the tenants. It is safe for concurrent use.
type Registry struct {
	opts Options

	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// New returns an empty registry.
func New(opts Options) *Registry {
	return &Registry{opts: opts, tenants: map[string]*Tenant{}}
}

// Options returns the registry's options.
func (r *Registry) Options() Options { return r.opts }

// Tenant returns the named tenant, or nil when it was never loaded.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[name]
}

// Names lists the tenants in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ensureTenant returns the named tenant, creating the slot on first
// load.
func (r *Registry) ensureTenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[name]; ok {
		return t
	}
	t := &Tenant{name: name, reg: r, m: tenantMetricsFor(name), probes: r.opts.Probes}
	r.tenants[name] = t
	return t
}

// SetProbes replaces the tenant's golden probe set (creating the tenant
// slot if needed), overriding the registry-wide default for that tenant.
func (r *Registry) SetProbes(tenant string, ps ProbeSet) {
	t := r.ensureTenant(tenant)
	t.probeMu.Lock()
	t.probes = ps
	t.probeMu.Unlock()
}

// ErrProbeRejected wraps golden-probe validation failures; a Load that
// returns it left the tenant's previous model live.
var ErrProbeRejected = errors.New("registry: candidate model rejected by golden probe set")

// ErrNoSource reports a Reload on a tenant that was never file-loaded.
var ErrNoSource = errors.New("registry: tenant has no snapshot source to reload from")

// Info describes one published model.
type Info struct {
	Tenant     string `json:"tenant"`
	Version    string `json:"version"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source,omitempty"`
}

// Infos lists every tenant's live model.
func (r *Registry) Infos() []Info {
	names := r.Names()
	out := make([]Info, 0, len(names))
	for _, name := range names {
		t := r.Tenant(name)
		v, gen, ok := t.Version()
		if !ok {
			continue
		}
		out = append(out, Info{Tenant: name, Version: v, Generation: gen, Source: t.Source()})
	}
	return out
}

// Load materializes a snapshot into a candidate model, validates it
// against the tenant's golden probe set, and atomically publishes it.
// On any failure the tenant's previous model stays live and keeps
// serving. version labels the snapshot in Info and reload responses.
func (r *Registry) Load(ctx context.Context, tenant, version string, snap *core.DetectorSnapshot) (Info, error) {
	t := r.ensureTenant(tenant)
	det, analyzer, err := core.DetectorFromSnapshot(snap)
	if err != nil {
		t.m.reloadError.Inc()
		return Info{}, fmt.Errorf("registry: load %s: %w", tenant, err)
	}
	det.SetMetricsTenant(tenant)
	if err := r.validate(ctx, t, det); err != nil {
		t.m.reloadRejected.Inc()
		return Info{}, fmt.Errorf("registry: load %s (version %s): %w", tenant, version, err)
	}
	return t.publish(det, analyzer, version), nil
}

// Install publishes an already-materialized model — the path for
// in-process construction (a freshly trained detector, or the
// single-tenant service adapter) where no snapshot exists. The
// candidate passes the same golden-probe gate as Load.
func (r *Registry) Install(ctx context.Context, tenant, version string, det *core.Detector, analyzer *core.Analyzer) (Info, error) {
	t := r.ensureTenant(tenant)
	det.SetMetricsTenant(tenant)
	if err := r.validate(ctx, t, det); err != nil {
		t.m.reloadRejected.Inc()
		return Info{}, fmt.Errorf("registry: install %s (version %s): %w", tenant, version, err)
	}
	return t.publish(det, analyzer, version), nil
}

// LoadFile is Load from a snapshot file; the tenant remembers path as
// its Reload source and the version is derived from the file's base
// name plus a content hash.
func (r *Registry) LoadFile(ctx context.Context, tenant, path string) (Info, error) {
	t := r.ensureTenant(tenant)
	f, err := os.Open(path)
	if err != nil {
		t.m.reloadError.Inc()
		return Info{}, fmt.Errorf("registry: load %s: %w", tenant, err)
	}
	hash := fnv.New32a()
	tee := io.TeeReader(f, hash)
	snap, err := core.ReadSnapshot(tee)
	if err == nil {
		// ReadSnapshot buffers and may stop short of EOF (a columnar
		// container ends at its last block); drain the tee so the
		// version hash always covers the whole file.
		_, err = io.Copy(io.Discard, tee)
	}
	f.Close()
	if err != nil {
		t.m.reloadError.Inc()
		return Info{}, fmt.Errorf("registry: load %s from %s: %w", tenant, path, err)
	}
	version := fmt.Sprintf("%s#%08x", filepath.Base(path), hash.Sum32())
	det, analyzer, err := core.DetectorFromSnapshot(snap)
	if err != nil {
		t.m.reloadError.Inc()
		return Info{}, fmt.Errorf("registry: load %s from %s: %w", tenant, path, err)
	}
	det.SetMetricsTenant(tenant)
	if err := r.validate(ctx, t, det); err != nil {
		t.m.reloadRejected.Inc()
		return Info{}, fmt.Errorf("registry: load %s (version %s): %w", tenant, version, err)
	}
	t.setSource(path)
	return t.publish(det, analyzer, version), nil
}

// Reload re-reads the tenant's snapshot source (set by LoadFile) and
// runs the full load → validate → swap sequence.
func (r *Registry) Reload(ctx context.Context, tenant string) (Info, error) {
	t := r.Tenant(tenant)
	if t == nil {
		return Info{}, fmt.Errorf("registry: unknown tenant %q", tenant)
	}
	src := t.Source()
	if src == "" {
		return Info{}, fmt.Errorf("registry: reload %s: %w", tenant, ErrNoSource)
	}
	return r.LoadFile(ctx, tenant, src)
}

// ReloadAll reloads every tenant that has a snapshot source, returning
// the first error after attempting all of them (catsserve's SIGHUP
// re-scan: one bad tenant must not block the others' rollout).
func (r *Registry) ReloadAll(ctx context.Context) error {
	var firstErr error
	for _, name := range r.Names() {
		t := r.Tenant(name)
		if t == nil || t.Source() == "" {
			continue
		}
		if _, err := r.Reload(ctx, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// validate scores the tenant's golden probe set on the candidate
// detector: any scoring error or more than MaxMismatches missed
// WantFraud expectations rejects the candidate.
func (r *Registry) validate(ctx context.Context, t *Tenant, det *core.Detector) error {
	ps := t.probeSet()
	if len(ps.Probes) == 0 {
		return nil
	}
	items := make([]ecom.Item, len(ps.Probes))
	for i := range ps.Probes {
		items[i] = ps.Probes[i].Item
	}
	dets, err := det.DetectContext(ctx, items, r.opts.Workers)
	if err != nil {
		return fmt.Errorf("%w: probe scoring failed: %v", ErrProbeRejected, err)
	}
	mismatches := 0
	var firstMiss string
	for i := range ps.Probes {
		want := ps.Probes[i].WantFraud
		if want == nil || dets[i].IsFraud == *want {
			continue
		}
		mismatches++
		if firstMiss == "" {
			firstMiss = fmt.Sprintf("probe %d (item %s): got fraud=%v, want %v",
				i, items[i].ID, dets[i].IsFraud, *want)
		}
	}
	if mismatches > ps.MaxMismatches {
		return fmt.Errorf("%w: %d/%d probe verdicts missed (allowed %d); first: %s",
			ErrProbeRejected, mismatches, len(ps.Probes), ps.MaxMismatches, firstMiss)
	}
	return nil
}

// publish swaps the validated candidate in as the tenant's live model:
// generation assignment and the pointer CAS happen under reloadMu, so
// publication order equals generation order; the old handle is retired
// after the swap and closes once its last in-flight holder releases.
func (t *Tenant) publish(det *core.Detector, analyzer *core.Analyzer, version string) Info {
	t.reloadMu.Lock()
	gen := t.gen.Add(1)
	h := &Handle{Model: Model{Detector: det, Analyzer: analyzer, Version: version, Generation: gen}}
	if bt := t.reg.opts.Batching; bt != nil {
		o := *bt
		o.Tenant = t.name
		h.disp = dispatch.New(det, o)
	}
	// refs counts in-flight holders; being published is what keeps the
	// fresh handle alive until retire().
	old := t.cur.Load()
	if !t.cur.CompareAndSwap(old, h) {
		// Unreachable: swaps are serialized by reloadMu, so cur cannot
		// move between the load and the CAS.
		panic("registry: concurrent publish raced the CAS")
	}
	t.m.modelVersion.Set(int64(gen))
	t.m.reloadOK.Inc()
	t.reloadMu.Unlock()
	if old != nil {
		old.retire()
	}
	return Info{Tenant: t.name, Version: version, Generation: gen, Source: t.Source()}
}

// Close retires every tenant's live handle: their dispatchers drain
// once in-flight holders release, and subsequent Acquires return nil.
func (r *Registry) Close() {
	r.mu.RLock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.RUnlock()
	for _, t := range tenants {
		t.reloadMu.Lock()
		old := t.cur.Swap(nil)
		t.reloadMu.Unlock()
		if old != nil {
			old.retire()
		}
	}
}
