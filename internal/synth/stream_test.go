package synth

import (
	"errors"
	"testing"

	"repro/internal/ecom"
)

func streamAll(t *testing.T, cfg Config) ([]ecom.Item, StreamStats) {
	t.Helper()
	var items []ecom.Item
	stats, err := Stream(cfg, func(it *ecom.Item) error {
		items = append(items, *it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return items, stats
}

func TestStreamDeterministic(t *testing.T) {
	cfg := Config{Name: "s", Seed: 11, FraudEvidence: 20, FraudManual: 5, Normal: 40, Shops: 3}
	a, astats := streamAll(t, cfg)
	b, bstats := streamAll(t, cfg)
	if astats != bstats {
		t.Fatalf("stats differ: %+v vs %+v", astats, bstats)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Label != b[i].Label || len(a[i].Comments) != len(b[i].Comments) {
			t.Fatalf("item %d differs between runs", i)
		}
		for j := range a[i].Comments {
			if a[i].Comments[j] != b[i].Comments[j] {
				t.Fatalf("comment %d of item %d differs between runs", j, i)
			}
		}
	}
}

func TestStreamCountsAndStats(t *testing.T) {
	cfg := Config{Name: "s", Seed: 12, FraudEvidence: 15, FraudManual: 5, Normal: 30, Shops: 3}
	items, stats := streamAll(t, cfg)
	if stats.Items != 50 || len(items) != 50 {
		t.Fatalf("items = %d (stats %d), want 50", len(items), stats.Items)
	}
	var fe, fm, n, comments int
	for i := range items {
		switch items[i].Label {
		case ecom.FraudEvidence:
			fe++
		case ecom.FraudManual:
			fm++
		case ecom.Normal:
			n++
		}
		comments += len(items[i].Comments)
	}
	if fe != 15 || fm != 5 || n != 30 {
		t.Fatalf("class counts = %d/%d/%d, want 15/5/30", fe, fm, n)
	}
	if stats.Fraud != 20 || stats.Normal != 30 {
		t.Fatalf("stats fraud/normal = %d/%d", stats.Fraud, stats.Normal)
	}
	if stats.Comments != comments || comments == 0 {
		t.Fatalf("stats comments = %d, counted %d", stats.Comments, comments)
	}
}

// TestStreamInterleavesClasses: the emitted order must not be
// "all fraud then all normal" — label order carries no information.
func TestStreamInterleavesClasses(t *testing.T) {
	cfg := Config{Name: "s", Seed: 13, FraudEvidence: 50, Normal: 50, Shops: 3}
	items, _ := streamAll(t, cfg)
	firstNormal, lastFraud := -1, -1
	for i := range items {
		if items[i].Label.IsFraud() {
			lastFraud = i
		} else if firstNormal == -1 {
			firstNormal = i
		}
	}
	if firstNormal == -1 || lastFraud == -1 || lastFraud < firstNormal {
		t.Fatalf("classes not interleaved: first normal %d, last fraud %d", firstNormal, lastFraud)
	}
}

// TestStreamSharesPopulationWithGenerate: Stream and Generate draw from
// identical user/shop pools (same RNG prefix), differing only in item
// order.
func TestStreamSharesPopulationWithGenerate(t *testing.T) {
	cfg := Config{Name: "s", Seed: 14, FraudEvidence: 10, Normal: 20, Shops: 2}
	u := Generate(cfg)
	items, _ := streamAll(t, cfg)

	shops := map[string]bool{}
	for i := range u.Dataset.Items {
		shops[u.Dataset.Items[i].ShopID] = true
	}
	users := map[string]bool{}
	for _, usr := range u.Users {
		users[usr.ID] = true
	}
	for i := range items {
		if !shops[items[i].ShopID] {
			t.Fatalf("streamed item %d references shop %q unknown to Generate", i, items[i].ShopID)
		}
		for j := range items[i].Comments {
			if !users[items[i].Comments[j].UserID] {
				t.Fatalf("streamed comment references user %q unknown to Generate", items[i].Comments[j].UserID)
			}
		}
	}
}

func TestStreamEmitError(t *testing.T) {
	cfg := Config{Name: "s", Seed: 15, FraudEvidence: 5, Normal: 5, Shops: 2}
	boom := errors.New("boom")
	n := 0
	stats, err := Stream(cfg, func(*ecom.Item) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if stats.Items != 3 {
		t.Fatalf("stats.Items = %d at abort, want 3", stats.Items)
	}
}
