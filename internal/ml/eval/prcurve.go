package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// PRPoint is one operating point on a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve of a scored sample:
// scores[i] is P(fraud) for an example with binary truth labels[i].
// One point is emitted per distinct score, ordered by decreasing
// threshold (increasing recall). An empty or positives-free input
// returns nil.
func PRCurve(scores []float64, labels []int) []PRPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	type pair struct {
		s float64
		y int
	}
	pairs := make([]pair, len(scores))
	totalPos := 0
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		totalPos += labels[i]
	}
	if totalPos == 0 {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	var out []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		thr := pairs[i].s
		// Consume all examples tied at this score: a threshold can
		// only sit between distinct scores.
		for i < len(pairs) && pairs[i].s == thr {
			if pairs[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, PRPoint{
			Threshold: thr,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
	}
	return out
}

// AveragePrecision computes area under the precision-recall curve by
// the step-wise interpolation used in information retrieval: the sum of
// precision × recall-increment over curve points. Returns NaN for an
// empty curve.
func AveragePrecision(curve []PRPoint) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	var ap, prevRecall float64
	for _, p := range curve {
		ap += p.Precision * (p.Recall - prevRecall)
		prevRecall = p.Recall
	}
	return ap
}

// BestThreshold returns the curve point maximizing F1 (ties broken
// toward higher precision). It returns false for an empty curve.
func BestThreshold(curve []PRPoint) (PRPoint, bool) {
	if len(curve) == 0 {
		return PRPoint{}, false
	}
	best := curve[0]
	bestF := f1(best)
	for _, p := range curve[1:] {
		f := f1(p)
		if f > bestF || (f == bestF && p.Precision > best.Precision) {
			best, bestF = p, f
		}
	}
	return best, true
}

// ThresholdForPrecision returns the lowest threshold whose operating
// point still reaches the target precision — the "report as much as
// possible while staying precise" choice a third-party reporter makes
// (the E-platform deployment). Returns false if no point reaches it.
func ThresholdForPrecision(curve []PRPoint, target float64) (PRPoint, bool) {
	var best PRPoint
	found := false
	for _, p := range curve {
		if p.Precision >= target {
			// Curve is ordered by decreasing threshold; the last
			// qualifying point has the highest recall.
			best = p
			found = true
		}
	}
	return best, found
}

func f1(p PRPoint) float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

// ROCAUC computes the area under the ROC curve via the rank-based
// Mann–Whitney statistic: the probability a random positive scores
// above a random negative, with ties counted half. Returns NaN when
// either class is empty.
func ROCAUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) || len(scores) == 0 {
		return math.NaN()
	}
	type pair struct {
		s float64
		y int
	}
	pairs := make([]pair, len(scores))
	var nPos, nNeg float64
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })
	// Sum of positive ranks with midranks for ties.
	var rankSum float64
	i := 0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			j++
		}
		// Ranks i+1..j share the midrank.
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if pairs[k].y == 1 {
				rankSum += mid
			}
		}
		i = j
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// ScoreDataset scores every row of ds with clf and returns (scores,
// labels) ready for PRCurve.
func ScoreDataset(clf ml.Classifier, ds *ml.Dataset) (scores []float64, labels []int) {
	scores = make([]float64, ds.Len())
	for i, x := range ds.X {
		scores[i] = clf.PredictProba(x)
	}
	return scores, ds.Y
}

// FormatCurve renders up to n evenly spaced curve points as a small
// table for experiment output.
func FormatCurve(curve []PRPoint, n int) string {
	if len(curve) == 0 {
		return "(empty curve)\n"
	}
	if n <= 0 || n > len(curve) {
		n = len(curve)
	}
	out := fmt.Sprintf("%-10s %-10s %-10s\n", "threshold", "precision", "recall")
	step := float64(len(curve)-1) / float64(maxInt(n-1, 1))
	for k := 0; k < n; k++ {
		p := curve[int(float64(k)*step+0.5)]
		out += fmt.Sprintf("%-10.3f %-10.3f %-10.3f\n", p.Threshold, p.Precision, p.Recall)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
