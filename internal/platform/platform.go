// Package platform serves a synthetic e-commerce site over HTTP — the
// stand-in for the public web pages of E-platform that the paper's
// Scrapy-based collector crawled for a week (Section IV-A). The site
// exposes the same three public surfaces the paper scrapes:
//
//	GET /shops?page=N                 — paginated shop directory
//	GET /shops/{id}/items?page=N      — paginated item listings per shop
//	GET /items/{id}/comments?page=N   — paginated comments per item
//
// Responses are JSON. A configurable artificial latency and an
// every-nth-request transient 503 exercise the crawler's politeness and
// retry paths.
package platform

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecom"
	"repro/internal/synth"
)

// Options tunes the simulated site's behavior.
type Options struct {
	// PageSize is the number of records per page; <= 0 means 20.
	PageSize int
	// Latency delays every response (simulated server work).
	Latency time.Duration
	// FailEvery makes every nth request return 503 (0 disables).
	FailEvery int
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 20
	}
	return o
}

// Server is the simulated platform. Create one with New, mount its
// Handler (e.g. via httptest.NewServer), and point the collector at it.
type Server struct {
	opts Options

	mu       sync.RWMutex
	shops    []ecom.Shop
	byShop   map[string][]*ecom.Item
	items    map[string]*ecom.Item
	requests atomic.Int64
}

// ShopPage is the JSON payload of the shop directory.
type ShopPage struct {
	Shops   []ecom.Shop `json:"shops"`
	Page    int         `json:"page"`
	HasNext bool        `json:"has_next"`
}

// ItemSummary is the public listing view of an item (no comments, no
// label — labels are internal ground truth, never exposed).
type ItemSummary struct {
	ID          string `json:"item_id"`
	ShopID      string `json:"shop_id"`
	Name        string `json:"item_name"`
	PriceCents  int64  `json:"price_cents"`
	SalesVolume int    `json:"sales_volume"`
}

// ItemPage is the JSON payload of a shop's item listing.
type ItemPage struct {
	Items   []ItemSummary `json:"items"`
	Page    int           `json:"page"`
	HasNext bool          `json:"has_next"`
}

// CommentPage is the JSON payload of an item's comment listing.
type CommentPage struct {
	Comments []ecom.Comment `json:"comments"`
	Page     int            `json:"page"`
	HasNext  bool           `json:"has_next"`
}

// New builds a Server from a generated universe.
func New(u *synth.Universe, opts Options) *Server {
	s := &Server{
		opts:   opts.withDefaults(),
		byShop: map[string][]*ecom.Item{},
		items:  map[string]*ecom.Item{},
	}
	seenShop := map[string]bool{}
	for i := range u.Dataset.Items {
		it := &u.Dataset.Items[i]
		s.byShop[it.ShopID] = append(s.byShop[it.ShopID], it)
		s.items[it.ID] = it
		if !seenShop[it.ShopID] {
			seenShop[it.ShopID] = true
			s.shops = append(s.shops, ecom.Shop{ID: it.ShopID, Name: "shop " + it.ShopID, URL: "/shops/" + it.ShopID})
		}
	}
	return s
}

// Requests returns the number of requests served, for politeness tests.
func (s *Server) Requests() int64 { return s.requests.Load() }

// NumShops returns the number of shops with at least one item.
func (s *Server) NumShops() int { return len(s.shops) }

// Handler returns the site's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shops", s.withMiddleware(s.handleShops))
	mux.HandleFunc("/shops/", s.withMiddleware(s.handleShopItems))
	mux.HandleFunc("/items/", s.withMiddleware(s.handleComments))
	return mux
}

func (s *Server) withMiddleware(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := s.requests.Add(1)
		if s.opts.FailEvery > 0 && n%int64(s.opts.FailEvery) == 0 {
			http.Error(w, "transient overload", http.StatusServiceUnavailable)
			return
		}
		if s.opts.Latency > 0 {
			time.Sleep(s.opts.Latency)
		}
		h(w, r)
	}
}

func pageParam(r *http.Request) int {
	p, err := strconv.Atoi(r.URL.Query().Get("page"))
	if err != nil || p < 0 {
		return 0
	}
	return p
}

// paginate returns the [lo,hi) window of n records for page p plus
// whether more pages follow.
func paginate(n, p, size int) (lo, hi int, hasNext bool) {
	lo = p * size
	if lo > n {
		lo = n
	}
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi, hi < n
}

func (s *Server) handleShops(w http.ResponseWriter, r *http.Request) {
	p := pageParam(r)
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi, more := paginate(len(s.shops), p, s.opts.PageSize)
	writeJSON(w, ShopPage{Shops: s.shops[lo:hi], Page: p, HasNext: more})
}

func (s *Server) handleShopItems(w http.ResponseWriter, r *http.Request) {
	// Path: /shops/{id}/items
	rest := strings.TrimPrefix(r.URL.Path, "/shops/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[1] != "items" {
		http.NotFound(w, r)
		return
	}
	shopID := parts[0]
	p := pageParam(r)
	s.mu.RLock()
	defer s.mu.RUnlock()
	items, ok := s.byShop[shopID]
	if !ok {
		http.NotFound(w, r)
		return
	}
	lo, hi, more := paginate(len(items), p, s.opts.PageSize)
	page := ItemPage{Page: p, HasNext: more}
	for _, it := range items[lo:hi] {
		page.Items = append(page.Items, ItemSummary{
			ID: it.ID, ShopID: it.ShopID, Name: it.Name,
			PriceCents: it.PriceCents, SalesVolume: it.SalesVolume,
		})
	}
	writeJSON(w, page)
}

func (s *Server) handleComments(w http.ResponseWriter, r *http.Request) {
	// Path: /items/{id}/comments
	rest := strings.TrimPrefix(r.URL.Path, "/items/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[1] != "comments" {
		http.NotFound(w, r)
		return
	}
	itemID := parts[0]
	p := pageParam(r)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[itemID]
	if !ok {
		http.NotFound(w, r)
		return
	}
	lo, hi, more := paginate(len(it.Comments), p, s.opts.PageSize)
	writeJSON(w, CommentPage{Comments: it.Comments[lo:hi], Page: p, HasNext: more})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing more to do.
		_ = err
	}
}

// URLFor helpers build the site's canonical paths.
func URLForShops(page int) string { return fmt.Sprintf("/shops?page=%d", page) }

// URLForShopItems builds the item-listing path for a shop page.
func URLForShopItems(shopID string, page int) string {
	return fmt.Sprintf("/shops/%s/items?page=%d", shopID, page)
}

// URLForComments builds the comment-listing path for an item page.
func URLForComments(itemID string, page int) string {
	return fmt.Sprintf("/items/%s/comments?page=%d", itemID, page)
}
