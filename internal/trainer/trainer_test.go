package trainer

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecom"
	"repro/internal/ml/eval"
	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/textgen"
)

// fixture is one self-contained champion/challenger world: a registry
// with a champion trained on the clean distribution, plus a shifted
// feedback universe whose labels the trainer will learn from.
type fixture struct {
	reg      *registry.Registry
	analyzer *core.Analyzer
	clock    *FakeClock
}

const fixtureTenant = "taobao"

// epoch is the fixed fake wall-clock origin every test starts at.
var epoch = time.Unix(1_700_000_000, 0)

func newFixture(t testing.TB) *fixture {
	t.Helper()
	bank := textgen.NewBank()
	texts, labels := synth.PolarCorpus(800, 91)
	analyzer, err := core.OracleAnalyzer(bank, texts, labels)
	if err != nil {
		t.Fatal(err)
	}
	champion, err := core.NewDetector(analyzer, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	train := synth.Generate(synth.Config{
		Name: "trainer-clean", Seed: 92, FraudEvidence: 80, Normal: 120, Shops: 6,
	})
	if err := champion.Train(&train.Dataset, 0); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(registry.Options{})
	if _, err := reg.Install(context.Background(), fixtureTenant, "seed-v1", champion, analyzer); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return &fixture{reg: reg, analyzer: analyzer, clock: NewFakeClock(epoch)}
}

// shiftedFeedback generates the post-drift labeled stream: the same
// generative universe with half the neutral vocabulary swapped out, the
// regime where the frozen champion's word features go blind.
func shiftedFeedback(seed int64) []Feedback {
	u := synth.Generate(synth.Config{
		Name: "trainer-shifted", Seed: seed,
		FraudEvidence: 70, Normal: 110, Shops: 6, VocabShift: 0.6,
	})
	fbs := make([]Feedback, len(u.Dataset.Items))
	for i, it := range u.Dataset.Items {
		fbs[i] = Feedback{Item: it, Fraud: it.Label.IsFraud()}
	}
	return fbs
}

// TestPromotionGateDecisions pins the loop's exact decision sequence on
// a fixed-seed feedback corpus: empty window → min_samples, one-sided
// labels → class_skew, a full shifted window → promoted, an immediate
// rerun → cooldown, and a post-cooldown rerun on the unchanged window →
// lost (the freshly promoted champion ties the identical challenger,
// and a tie never promotes).
func TestPromotionGateDecisions(t *testing.T) {
	f := newFixture(t)
	// Window 180 = exactly the shifted corpus: feeding it evicts the 50
	// normal-only entries from the class-skew step, so the promotion
	// cycle trains on the pure post-shift distribution.
	tr := New(f.reg, f.clock, Config{
		Window: 180, MinSamples: 40, MinClassSamples: 4, Cooldown: time.Hour, Seed: 1,
	})
	ctx := context.Background()

	d, err := tr.RunCycle(ctx, fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeMinSamples || d.Cycle != 1 {
		t.Fatalf("cycle 1 = %+v, want min_samples", d)
	}

	var normals []Feedback
	for _, fb := range shiftedFeedback(500) {
		if !fb.Fraud {
			normals = append(normals, fb)
		}
	}
	if _, err := tr.Feed(fixtureTenant, normals[:50]); err != nil {
		t.Fatal(err)
	}
	d, err = tr.RunCycle(ctx, fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeClassSkew {
		t.Fatalf("cycle 2 = %+v, want class_skew", d)
	}

	if _, err := tr.Feed(fixtureTenant, shiftedFeedback(501)); err != nil {
		t.Fatal(err)
	}
	d, err = tr.RunCycle(ctx, fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomePromoted {
		t.Fatalf("cycle 3 = %+v, want promoted", d)
	}
	if d.ChallengerF1 <= d.ChampionF1 {
		t.Errorf("promotion without an F1 win: challenger %.3f vs champion %.3f",
			d.ChallengerF1, d.ChampionF1)
	}
	if d.PromotedGen != 2 {
		t.Errorf("promoted generation = %d, want 2", d.PromotedGen)
	}
	version, gen, ok := f.reg.Tenant(fixtureTenant).Version()
	if !ok || gen != 2 || version != d.ChallengerVersion {
		t.Errorf("registry live model = %q gen %d, want %q gen 2", version, gen, d.ChallengerVersion)
	}

	d, err = tr.RunCycle(ctx, fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeCooldown {
		t.Fatalf("cycle 4 = %+v, want cooldown", d)
	}

	f.clock.Advance(2 * time.Hour)
	d, err = tr.RunCycle(ctx, fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeLost {
		t.Fatalf("cycle 5 = %+v, want lost (tie never promotes)", d)
	}
	if d.F1Delta > 0 {
		t.Errorf("identical window after promotion gave positive delta %.4f", d.F1Delta)
	}
	if _, gen, _ := f.reg.Tenant(fixtureTenant).Version(); gen != 2 {
		t.Errorf("losing challenger moved the registry to generation %d", gen)
	}
}

// TestDeterminismWitness runs two independent fixtures through the
// identical feed-and-cycle script and requires byte-identical verdicts:
// same window hash, same challenger version, same metrics, same
// outcome. This is the property the whole package is built around —
// promotion decisions are a pure function of the feedback window.
func TestDeterminismWitness(t *testing.T) {
	runOnce := func() []Decision {
		f := newFixture(t)
		tr := New(f.reg, f.clock, Config{MinSamples: 40, Seed: 7})
		ctx := context.Background()
		var out []Decision
		if _, err := tr.Feed(fixtureTenant, shiftedFeedback(501)); err != nil {
			t.Fatal(err)
		}
		d, err := tr.RunCycle(ctx, fixtureTenant)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
		if _, err := tr.Feed(fixtureTenant, shiftedFeedback(502)); err != nil {
			t.Fatal(err)
		}
		d, err = tr.RunCycle(ctx, fixtureTenant)
		if err != nil {
			t.Fatal(err)
		}
		return append(out, d)
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cycle %d diverged between identical runs:\n  run A: %+v\n  run B: %+v", i+1, a[i], b[i])
		}
	}
	if a[0].WindowHash == "" || a[0].ChallengerVersion == "" {
		t.Errorf("evaluated decision missing window hash or version: %+v", a[0])
	}
}

// TestGateProperties property-tests the promotion gate: a challenger
// with exactly the champion's metrics never wins (any non-negative
// margin), and a challenger that clears the margin and floors always
// wins. Randomized metrics are checked against the direct predicate.
func TestGateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		champ := eval.Metrics{Precision: rng.Float64(), Recall: rng.Float64(), F1: rng.Float64()}
		cfg := Config{MinF1Gain: rng.Float64() * 0.1}
		if rng.Intn(4) == 0 {
			cfg.MinPrecision = rng.Float64()
		}
		if rng.Intn(4) == 0 {
			cfg.MinRecall = rng.Float64()
		}

		// Equal challenger: never promotes.
		if win, _ := gateVerdict(champ, champ, cfg); win {
			t.Fatalf("case %d: identical challenger promoted under cfg %+v", i, cfg)
		}

		// Strictly dominating challenger: always promotes.
		chal := eval.Metrics{
			Precision: maxf(champ.Precision, cfg.MinPrecision) + 0.01,
			Recall:    maxf(champ.Recall, cfg.MinRecall) + 0.01,
			F1:        champ.F1 + cfg.MinF1Gain + 0.01,
		}
		if win, reason := gateVerdict(champ, chal, cfg); !win {
			t.Fatalf("case %d: dominating challenger rejected (%s) under cfg %+v", i, reason, cfg)
		}

		// Random challenger: gate must agree with the direct predicate.
		rchal := eval.Metrics{Precision: rng.Float64(), Recall: rng.Float64(), F1: rng.Float64()}
		want := rchal.F1-champ.F1 > cfg.MinF1Gain &&
			!(cfg.MinPrecision > 0 && rchal.Precision < cfg.MinPrecision) &&
			!(cfg.MinRecall > 0 && rchal.Recall < cfg.MinRecall)
		if win, _ := gateVerdict(champ, rchal, cfg); win != want {
			t.Fatalf("case %d: gate=%v want %v for champ %+v chal %+v cfg %+v", i, win, want, champ, rchal, cfg)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestTrainerLoopStartClose drives the background loop purely through
// the fake clock: ticks trigger cycles, Close drains without any
// time.Sleep synchronization, and Feed after Close is refused.
func TestTrainerLoopStartClose(t *testing.T) {
	f := newFixture(t)
	cycles := make(chan Decision, 16)
	tr := New(f.reg, f.clock, Config{
		Interval: time.Minute, MinSamples: 40,
		OnCycle: func(d Decision) { cycles <- d },
	})
	tr.Start()
	tr.Start() // idempotent

	f.clock.Advance(time.Minute)
	d := <-cycles
	if d.Outcome != OutcomeMinSamples {
		t.Fatalf("tick 1 outcome = %s, want min_samples", d.Outcome)
	}
	f.clock.Advance(time.Minute)
	d = <-cycles
	if d.Cycle != 2 {
		t.Fatalf("tick 2 ran cycle %d, want 2", d.Cycle)
	}

	tr.Close()
	tr.Close() // idempotent
	if _, err := tr.Feed(fixtureTenant, shiftedFeedback(501)[:1]); err != ErrClosed {
		t.Fatalf("Feed after Close = %v, want ErrClosed", err)
	}
}

func TestFeedValidation(t *testing.T) {
	f := newFixture(t)
	tr := New(f.reg, f.clock, Config{})

	if _, err := tr.Feed("nope", shiftedFeedback(501)[:1]); err == nil {
		t.Error("Feed accepted an unknown tenant")
	}
	if _, err := tr.RunCycle(context.Background(), "nope"); err == nil {
		t.Error("RunCycle accepted an unknown tenant")
	}
	bad := []Feedback{{Item: ecom.Item{ID: ""}}}
	if _, err := tr.Feed(fixtureTenant, bad); err == nil {
		t.Error("Feed accepted an item without an id")
	}
	n, err := tr.Feed(fixtureTenant, shiftedFeedback(501)[:5])
	if err != nil || n != 5 {
		t.Errorf("Feed = (%d, %v), want (5, nil)", n, err)
	}
	st := tr.Status()
	if len(st) != 1 || st[0].WindowSize != 5 || st[0].WindowSeen != 5 {
		t.Errorf("Status = %+v, want one tenant with window 5/5", st)
	}
}

// TestWindowEviction pins the sliding-window semantics: a full ring
// evicts oldest-first and snapshots in chronological order.
func TestWindowEviction(t *testing.T) {
	w := newWindow(3)
	for i := 0; i < 5; i++ {
		w.add(Feedback{Item: ecom.Item{ID: fmt.Sprintf("i%d", i)}})
	}
	if w.len() != 3 || w.seen != 5 {
		t.Fatalf("len=%d seen=%d, want 3/5", w.len(), w.seen)
	}
	snap := w.snapshot()
	got := []string{snap[0].Item.ID, snap[1].Item.ID, snap[2].Item.ID}
	want := []string{"i2", "i3", "i4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", got, want)
		}
	}
}

func TestWindowHash(t *testing.T) {
	fbs := shiftedFeedback(501)[:10]
	if windowHash(fbs) != windowHash(append([]Feedback(nil), fbs...)) {
		t.Error("identical windows hash differently")
	}
	flipped := append([]Feedback(nil), fbs...)
	flipped[3].Fraud = !flipped[3].Fraud
	if windowHash(fbs) == windowHash(flipped) {
		t.Error("label flip did not change the window hash")
	}
	if windowHash(fbs) == windowHash(fbs[:9]) {
		t.Error("shorter window hashed identically")
	}
}

// TestFakeClockTicker pins the fake's tick semantics: deliveries only
// on Advance, multi-period advances coalesce to one pending tick, and
// Stop silences the channel.
func TestFakeClockTicker(t *testing.T) {
	c := NewFakeClock(epoch)
	tk := c.NewTicker(time.Minute)
	select {
	case <-tk.C():
		t.Fatal("tick before any Advance")
	default:
	}
	c.Advance(30 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("tick before the period elapsed")
	default:
	}
	c.Advance(30 * time.Second)
	if tkTime := <-tk.C(); !tkTime.Equal(epoch.Add(time.Minute)) {
		t.Errorf("tick at %v, want %v", tkTime, epoch.Add(time.Minute))
	}
	// Five periods at once: the channel coalesces to one pending tick.
	c.Advance(5 * time.Minute)
	<-tk.C()
	select {
	case <-tk.C():
		t.Error("coalescing failed: second tick pending")
	default:
	}
	tk.Stop()
	c.Advance(time.Hour)
	select {
	case <-tk.C():
		t.Error("tick after Stop")
	default:
	}
	if !c.Now().Equal(epoch.Add(time.Hour + 6*time.Minute)) {
		t.Errorf("Now = %v after advances", c.Now())
	}
}

// TestNoModelAndRunAll: a tenant slot without a published model reports
// no_model, and RunAll covers every tenant in sorted order.
func TestNoModelAndRunAll(t *testing.T) {
	f := newFixture(t)
	f.reg.SetProbes("empty", registry.ProbeSet{})
	tr := New(f.reg, f.clock, Config{MinSamples: 40})
	if _, err := tr.Feed("empty", shiftedFeedback(501)); err != nil {
		t.Fatal(err)
	}
	ds := tr.RunAll(context.Background())
	if len(ds) != 2 {
		t.Fatalf("RunAll returned %d decisions, want 2", len(ds))
	}
	if ds[0].Tenant != "empty" || ds[0].Outcome != OutcomeNoModel {
		t.Errorf("decision 0 = %+v, want empty/no_model", ds[0])
	}
	if ds[1].Tenant != fixtureTenant || ds[1].Outcome != OutcomeMinSamples {
		t.Errorf("decision 1 = %+v, want %s/min_samples", ds[1], fixtureTenant)
	}
}

// TestProbeRejected: a challenger that wins the holdout gate but fails
// the golden probe set is vetoed at publication and the champion stays
// live — the registry's safety net stays in the loop.
func TestProbeRejected(t *testing.T) {
	f := newFixture(t)
	// A probe no real model satisfies: an obviously organic listing the
	// probe set insists must be called fraud.
	wantFraud := true
	f.reg.SetProbes(fixtureTenant, registry.ProbeSet{Probes: []registry.Probe{{
		Item: ecom.Item{
			ID: "probe-impossible", ShopID: "s1", Name: "ordinary kettle",
			PriceCents: 2000, SalesVolume: 500,
		},
		WantFraud: &wantFraud,
	}}})
	// Negative margin forces the gate win; publication must still veto.
	tr := New(f.reg, f.clock, Config{MinSamples: 40, MinF1Gain: -2})
	if _, err := tr.Feed(fixtureTenant, shiftedFeedback(501)); err != nil {
		t.Fatal(err)
	}
	d, err := tr.RunCycle(context.Background(), fixtureTenant)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeProbeRejected {
		t.Fatalf("outcome = %+v, want probe_rejected", d)
	}
	if _, gen, _ := f.reg.Tenant(fixtureTenant).Version(); gen != 1 {
		t.Errorf("vetoed challenger still moved the registry to generation %d", gen)
	}
}

// TestChampionWithoutAnalyzer: a tenant whose model was installed with
// no analyzer cannot grow a challenger and reports an error outcome.
func TestChampionWithoutAnalyzer(t *testing.T) {
	f := newFixture(t)
	det, err := core.NewDetector(f.analyzer, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	train := synth.Generate(synth.Config{
		Name: "no-analyzer", Seed: 92, FraudEvidence: 80, Normal: 120, Shops: 6,
	})
	if err := det.Train(&train.Dataset, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.reg.Install(context.Background(), "bare", "v1", det, nil); err != nil {
		t.Fatal(err)
	}
	tr := New(f.reg, f.clock, Config{MinSamples: 40})
	if _, err := tr.Feed("bare", shiftedFeedback(501)); err != nil {
		t.Fatal(err)
	}
	d, err := tr.RunCycle(context.Background(), "bare")
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeError {
		t.Fatalf("outcome = %+v, want error", d)
	}
}

// TestStatusHistoryBounded: the per-tenant decision log is capped at
// Config.History, newest retained.
func TestStatusHistoryBounded(t *testing.T) {
	f := newFixture(t)
	tr := New(f.reg, f.clock, Config{MinSamples: 40, History: 2})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := tr.RunCycle(ctx, fixtureTenant); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Status()
	if len(st) != 1 {
		t.Fatalf("Status = %+v, want one tenant", st)
	}
	if st[0].Cycles != 5 || len(st[0].Recent) != 2 {
		t.Fatalf("cycles=%d recent=%d, want 5 cycles with 2 retained", st[0].Cycles, len(st[0].Recent))
	}
	if st[0].Recent[1].Cycle != 5 || st[0].Recent[0].Cycle != 4 {
		t.Errorf("retained cycles %d,%d, want 4,5", st[0].Recent[0].Cycle, st[0].Recent[1].Cycle)
	}
}
