package adaboost

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "adaboost", func() ml.Classifier {
		return New(Config{Rounds: 60})
	})
}

func TestXORFailsAsExpected(t *testing.T) {
	// A sum of axis-aligned stumps is an additive model f(x)+g(y),
	// which provably cannot represent XOR. Training should stall near
	// chance (the early-stop guard) rather than loop or blow up.
	ds := mltest.XOR(400, 1)
	clf := New(Config{Rounds: 80})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(clf, ds); acc > 0.8 {
		t.Fatalf("additive stump model reached %.3f on XOR; expected near-chance", acc)
	}
}

func TestEarlyStopOnPerfectStump(t *testing.T) {
	// Perfectly separable on one threshold: one stump suffices, and
	// training must stop rather than divide by zero.
	ds := &ml.Dataset{
		X: [][]float64{{0}, {1}, {2}, {10}, {11}, {12}},
		Y: []int{0, 0, 0, 1, 1, 1},
	}
	clf := New(Config{Rounds: 50})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if clf.NumStumps() != 1 {
		t.Fatalf("NumStumps = %d, want 1 (early stop)", clf.NumStumps())
	}
	if acc := mltest.Accuracy(clf, ds); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
}

func TestNoSignalStopsEarly(t *testing.T) {
	// Constant features: every stump is at-chance, so boosting should
	// terminate without using all rounds.
	ds := &ml.Dataset{
		X: [][]float64{{5}, {5}, {5}, {5}},
		Y: []int{0, 1, 0, 1},
	}
	clf := New(Config{Rounds: 50})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if clf.NumStumps() > 1 {
		t.Fatalf("NumStumps = %d on pure noise, want <= 1", clf.NumStumps())
	}
}

func TestScoreSymmetry(t *testing.T) {
	ds := mltest.Gaussians(300, 2, 3, 2)
	clf := New(Config{Rounds: 40})
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// PredictProba must be monotone in Score.
	lo := clf.PredictProba([]float64{-2, -2})
	hi := clf.PredictProba([]float64{5, 5})
	if lo >= hi {
		t.Fatalf("proba not ordered by score: lo=%v hi=%v", lo, hi)
	}
}
