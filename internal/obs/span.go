package obs

import "time"

// Span is an open stage timing: StartSpan reads the wall clock once,
// End reads it again and records the elapsed seconds into the span's
// histogram. A Span is a two-word value — opening and closing one
// allocates nothing, so per-item spans are safe inside the detection
// batch loop.
//
// StartSpan is the observability layer's only wall-clock entry point.
// Deterministic packages must not call it: catslint's no-wallclock-rand
// rule names it a wall-clock bridge (internal/lint, DefaultConfig's
// WallclockBridges), so laundering time.Now through a span is a lint
// finding, not a silent determinism leak.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span that will observe into h. A nil h yields a
// span that only measures (End still returns the duration).
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End closes the span, records the elapsed time into the histogram in
// seconds, and returns the duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}
